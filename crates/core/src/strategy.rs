//! LRH path strategies: the cost formula (Fig. 5) and the O(n²)
//! `OptStrategy` algorithm (Algorithm 2), generalized over a pluggable
//! [`Chooser`].
//!
//! The paper's cost formula counts, for any LRH strategy, the exact number
//! of relevant subproblems GTED computes. `OptStrategy` evaluates the
//! formula bottom-up over all subtree pairs, keeping running cost sums in
//! six arrays so each pair costs O(1). Plugging a constant chooser into the
//! same engine evaluates the formula for a **fixed** strategy instead of the
//! minimum — which is how the benchmark harness obtains the analytic
//! subproblem counts of Zhang-L/R, Klein-H and Demaine-H (Fig. 8,
//! Tables 1–2 of the paper).

use crate::workspace::{Workspace, NO_ROW};
use rted_tree::{NodeId, PathKind, Tree};

/// Which input tree a chosen root-leaf path lies in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The path decomposes the left-hand tree `F`.
    F,
    /// The path decomposes the right-hand tree `G`.
    G,
}

/// One strategy decision: decompose `side` along its `kind` root-leaf path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathChoice {
    /// Tree to decompose.
    pub side: Side,
    /// Path family.
    pub kind: PathKind,
}

impl PathChoice {
    /// Option order used throughout: FL, GL, FR, GR, FH, GH.
    pub const ALL: [PathChoice; 6] = [
        PathChoice {
            side: Side::F,
            kind: PathKind::Left,
        },
        PathChoice {
            side: Side::G,
            kind: PathKind::Left,
        },
        PathChoice {
            side: Side::F,
            kind: PathKind::Right,
        },
        PathChoice {
            side: Side::G,
            kind: PathKind::Right,
        },
        PathChoice {
            side: Side::F,
            kind: PathKind::Heavy,
        },
        PathChoice {
            side: Side::G,
            kind: PathKind::Heavy,
        },
    ];

    /// Compact encoding (index into [`PathChoice::ALL`]).
    #[inline]
    pub fn code(self) -> u8 {
        let k = match self.kind {
            PathKind::Left => 0,
            PathKind::Right => 2,
            PathKind::Heavy => 4,
        };
        k + match self.side {
            Side::F => 0,
            Side::G => 1,
        }
    }

    /// Inverse of [`PathChoice::code`].
    #[inline]
    pub fn from_code(code: u8) -> Self {
        PathChoice::ALL[code as usize]
    }
}

impl std::fmt::Display for PathChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let side = match self.side {
            Side::F => "F",
            Side::G => "G",
        };
        write!(f, "{}:{}", side, self.kind)
    }
}

/// Selects one of the six LRH options for a subtree pair given their exact
/// costs (number of relevant subproblems).
///
/// Cost array order: `[FL, GL, FR, GR, FH, GH]` (see [`PathChoice::ALL`]).
pub trait Chooser {
    /// Returns the code of the chosen option.
    fn pick(&self, size_f: u32, size_g: u32, costs: &[u64; 6]) -> u8;
}

/// The RTED chooser: minimal cost, ties broken in `ALL` order (left/right
/// paths are preferred on ties because their single-path function computes
/// no superfluous subproblems).
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimalChooser;

impl Chooser for OptimalChooser {
    #[inline]
    fn pick(&self, _sf: u32, _sg: u32, costs: &[u64; 6]) -> u8 {
        let mut best = 0u8;
        for i in 1..6 {
            if costs[i as usize] < costs[best as usize] {
                best = i;
            }
        }
        best
    }
}

/// A constant chooser: Zhang-L is `FixedChooser(F, Left)`, Zhang-R is
/// `(F, Right)`, Klein-H is `(F, Heavy)`.
#[derive(Debug, Clone, Copy)]
pub struct FixedChooser(pub PathChoice);

impl Chooser for FixedChooser {
    #[inline]
    fn pick(&self, _sf: u32, _sg: u32, _costs: &[u64; 6]) -> u8 {
        self.0.code()
    }
}

/// The Demaine et al. chooser: heavy path in the larger tree.
#[derive(Debug, Clone, Copy, Default)]
pub struct DemaineChooser;

impl Chooser for DemaineChooser {
    #[inline]
    fn pick(&self, sf: u32, sg: u32, _costs: &[u64; 6]) -> u8 {
        if sf >= sg {
            PathChoice {
                side: Side::F,
                kind: PathKind::Heavy,
            }
            .code()
        } else {
            PathChoice {
                side: Side::G,
                kind: PathKind::Heavy,
            }
            .code()
        }
    }
}

/// Ablation chooser: optimal over a *subset* of the six LRH options.
///
/// Quantifies how much of RTED's advantage each path family contributes
/// (see DESIGN.md's ablation index and the `ablation` benchmark binary):
/// e.g. `SubsetChooser::lr_only()` is the best strategy an algorithm
/// without heavy paths could achieve, and `SubsetChooser::heavy_only()`
/// the best pure-heavy strategy (a per-pair-adaptive Demaine).
#[derive(Debug, Clone, Copy)]
pub struct SubsetChooser {
    /// `allowed[code]` marks option `code` (see [`PathChoice::ALL`]) usable.
    pub allowed: [bool; 6],
}

impl SubsetChooser {
    /// Optimal over left and right paths only (no `∆I` / heavy machinery).
    pub fn lr_only() -> Self {
        SubsetChooser {
            allowed: [true, true, true, true, false, false],
        }
    }

    /// Optimal over heavy paths only (adaptive side choice).
    pub fn heavy_only() -> Self {
        SubsetChooser {
            allowed: [false, false, false, false, true, true],
        }
    }

    /// Optimal over left paths only (adaptive Zhang side).
    pub fn left_only() -> Self {
        SubsetChooser {
            allowed: [true, true, false, false, false, false],
        }
    }

    /// Optimal over strategies that only decompose the first tree
    /// (single-tree strategies à la Dulucq & Touzet).
    pub fn f_side_only() -> Self {
        SubsetChooser {
            allowed: [true, false, true, false, true, false],
        }
    }
}

impl Chooser for SubsetChooser {
    #[inline]
    fn pick(&self, _sf: u32, _sg: u32, costs: &[u64; 6]) -> u8 {
        let mut best: Option<u8> = None;
        for i in 0..6u8 {
            // `map_or`, not `is_none_or`: the latter is stable only since
            // 1.82, above the workspace MSRV.
            if self.allowed[i as usize]
                && best.map_or(true, |b| costs[i as usize] < costs[b as usize])
            {
                best = Some(i);
            }
        }
        best.expect("SubsetChooser needs at least one allowed option")
    }
}

/// A computed path strategy: one [`PathChoice`] per subtree pair, plus the
/// exact number of relevant subproblems GTED will compute under it.
#[derive(Debug, Clone)]
pub struct Strategy {
    ng: usize,
    choices: Vec<u8>,
    /// Exact number of relevant subproblems of GTED under this strategy
    /// (the root value of the Fig.-5 cost recursion).
    pub cost: u64,
}

impl Strategy {
    /// The decision for subtree pair `(F_v, G_w)`.
    #[inline]
    pub fn choice(&self, v: NodeId, w: NodeId) -> PathChoice {
        PathChoice::from_code(self.choices[v.idx() * self.ng + w.idx()])
    }

    /// Surrenders the choice matrix so a [`Workspace`] can reuse its
    /// allocation (see [`Workspace::recycle`]).
    pub(crate) fn into_choices(self) -> Vec<u8> {
        self.choices
    }
}

/// Supplies GTED's per-pair decision. Implemented by precomputed
/// [`Strategy`] matrices, by a constant [`PathChoice`] (Zhang, Klein), and
/// by [`DemaineHeavy`].
pub trait StrategyProvider<L> {
    /// The decision for the pair of subtrees rooted at `v` (in `f`) and `w`
    /// (in `g`).
    fn choose(&self, f: &Tree<L>, g: &Tree<L>, v: NodeId, w: NodeId) -> PathChoice;
}

impl<L> StrategyProvider<L> for Strategy {
    #[inline]
    fn choose(&self, _f: &Tree<L>, _g: &Tree<L>, v: NodeId, w: NodeId) -> PathChoice {
        self.choice(v, w)
    }
}

impl<L> StrategyProvider<L> for PathChoice {
    #[inline]
    fn choose(&self, _f: &Tree<L>, _g: &Tree<L>, _v: NodeId, _w: NodeId) -> PathChoice {
        *self
    }
}

/// The strategy of Demaine et al.: heavy path in the larger subtree.
#[derive(Debug, Clone, Copy, Default)]
pub struct DemaineHeavy;

impl<L> StrategyProvider<L> for DemaineHeavy {
    #[inline]
    fn choose(&self, f: &Tree<L>, g: &Tree<L>, v: NodeId, w: NodeId) -> PathChoice {
        if f.size(v) >= g.size(w) {
            PathChoice {
                side: Side::F,
                kind: PathKind::Heavy,
            }
        } else {
            PathChoice {
                side: Side::G,
                kind: PathKind::Heavy,
            }
        }
    }
}

/// Child-role flags (is this node the leftmost / rightmost / heavy child
/// of its parent?), so the accumulator update is branch-cheap.
fn child_roles_into<L>(t: &Tree<L>, roles: &mut Vec<u8>) {
    roles.clear();
    roles.resize(t.len(), 0);
    for p in t.nodes() {
        let deg = t.degree(p);
        for (i, c) in t.children(p).enumerate() {
            let mut r = 0u8;
            if i == 0 {
                r |= 1; // leftmost
            }
            if i == deg - 1 {
                r |= 2; // rightmost
            }
            roles[c.idx()] = r;
        }
        if let Some(h) = t.heavy_child(p) {
            roles[h.idx()] |= 4;
        }
    }
}

/// Takes a zeroed interleaved row of `len` words from the pool. `width`
/// is the workspace's high-water row width: recycled rows were pre-grown
/// to it (see `compute_strategy_in`), and new rows are born with it, so
/// a warm pool never reallocates here regardless of which slot surfaces.
fn acquire_row(rows: &mut Vec<Vec<u64>>, free: &mut Vec<u32>, len: usize, width: usize) -> u32 {
    match free.pop() {
        Some(slot) => {
            let row = &mut rows[slot as usize];
            row.clear();
            row.resize(len, 0);
            slot
        }
        None => {
            let mut row = Vec::with_capacity(width);
            row.resize(len, 0);
            rows.push(row);
            (rows.len() - 1) as u32
        }
    }
}

/// Algorithm 2 (`OptStrategy`), generalized: evaluates the Fig.-5 cost
/// recursion bottom-up for every pair of subtrees, letting `chooser` pick
/// the option at each pair, and records the chosen paths.
///
/// With [`OptimalChooser`] this is exactly the paper's Algorithm 2 and runs
/// in O(|F|·|G|) time; with a fixed chooser it returns the exact
/// subproblem count of that fixed strategy.
///
/// Auxiliary memory is the O(|F|·|G|) choice **bytes** plus O(|F|)
/// recycled cost rows (see [`compute_strategy_in`]); the three dense u64
/// cost matrices of the textbook formulation are never materialized.
pub fn compute_strategy<L, Ch: Chooser>(f: &Tree<L>, g: &Tree<L>, chooser: &Ch) -> Strategy {
    compute_strategy_in(f, g, chooser, &mut Workspace::new())
}

/// [`compute_strategy`] drawing all scratch memory from a [`Workspace`]
/// (allocation-free after warm-up except for the returned choice matrix,
/// whose storage the caller can hand back via [`Workspace::recycle`]).
///
/// The Fig.-5 recursion reads a pair's running cost sums (`Lv`/`Rv`/`Hv`)
/// exactly twice: once when the pair itself is evaluated, and once more —
/// in the same evaluation — when the F-node is the leftmost / rightmost /
/// heavy child of its parent and the sums carry over instead of the
/// minimum. Rows are therefore recycled: a node's row is acquired when its
/// first child accumulates into it and released as soon as the node's own
/// pairs are evaluated, bounding live rows by the number of F-nodes with a
/// completed child below the current one (≤ depth + 1, worst case |F|)
/// instead of the dense 3·|F| rows. Rows interleave the `[L, R, H]` sums
/// per G-node, so each pair touches one cache line instead of three
/// matrices.
pub fn compute_strategy_in<L, Ch: Chooser>(
    f: &Tree<L>,
    g: &Tree<L>,
    chooser: &Ch,
    ws: &mut Workspace,
) -> Strategy {
    let nf = f.len();
    let ng = g.len();
    ws.counts_f.rebuild(f);
    ws.counts_g.rebuild(g);
    child_roles_into(f, &mut ws.froles);
    child_roles_into(g, &mut ws.groles);

    let mut choices = std::mem::take(&mut ws.choices);
    choices.clear();
    choices.resize(nf * ng, 0);

    // Interleaved row stride: [L, R, H] per G-node.
    let rw3 = 3 * ng;
    // Disjoint field borrows: the pool, the zero stand-in row and the
    // G-side accumulators are used side by side below.
    let Workspace {
        counts_f: cf,
        counts_g: cg,
        froles,
        groles,
        lw,
        rw,
        hw,
        rows,
        row_free,
        row_of,
        row_width,
        zero_row,
        ..
    } = ws;
    // Keep every pooled row grown to the high-water width: after this,
    // `acquire_row` never reallocates no matter which slot the free list
    // pops, so a reused workspace reaches its allocation fixed point the
    // first time it sees each problem size — not after some
    // acquisition-order-dependent number of passes.
    *row_width = (*row_width).max(rw3);
    let row_width = *row_width;
    for row in rows.iter_mut() {
        let need = row_width.saturating_sub(row.len());
        row.reserve(need);
    }
    lw.clear();
    lw.resize(ng, 0);
    rw.clear();
    rw.resize(ng, 0);
    hw.clear();
    hw.resize(ng, 0);
    row_of.clear();
    row_of.resize(nf, NO_ROW);
    row_free.clear();
    row_free.extend(0..rows.len() as u32);
    zero_row.clear();
    zero_row.resize(rw3, 0);

    let mut root_cost = 0u64;

    // Explicit index loop: `v` is simultaneously a postorder id and the
    // row offset into `choices`/`froles`.
    #[allow(clippy::needless_range_loop)]
    for v in 0..nf {
        lw.iter_mut().for_each(|x| *x = 0);
        rw.iter_mut().for_each(|x| *x = 0);
        hw.iter_mut().for_each(|x| *x = 0);
        let vid = NodeId(v as u32);
        let size_f = f.size(vid);
        let szf = size_f as u64;
        let af = cf.full[v];
        let flf = cf.left[v];
        let frf = cf.right[v];
        let fparent = f.parent(vid);
        let roles = froles[v];

        // The node's own accumulator row; leaves never accumulated
        // anything and read the shared all-zeros row instead.
        let vslot = row_of[v];
        // Taking the row out of the pool (`Vec::new` never allocates)
        // sidesteps aliasing with the parent-row borrow below.
        let vrow_owned: Vec<u64> = if vslot != NO_ROW {
            std::mem::take(&mut rows[vslot as usize])
        } else {
            Vec::new()
        };
        let vrow: &[u64] = if vslot != NO_ROW {
            &vrow_owned
        } else {
            &zero_row[..]
        };

        // The parent's accumulator row, acquired on first touch. The root
        // gets a throwaway row so the inner loop stays branch-free.
        let pslot = match fparent {
            Some(p) => {
                let pi = p.idx();
                if row_of[pi] == NO_ROW {
                    row_of[pi] = acquire_row(rows, row_free, rw3, row_width);
                }
                row_of[pi]
            }
            None => acquire_row(rows, row_free, rw3, row_width),
        };
        let prow: &mut [u64] = &mut rows[pslot as usize];

        for w in 0..ng {
            let wid = NodeId(w as u32);
            let size_g = g.size(wid);
            let szg = size_g as u64;
            let o = 3 * w;
            let costs: [u64; 6] = [
                szf * cg.left[w] + vrow[o],      // F, Left
                szg * flf + lw[w],               // G, Left
                szf * cg.right[w] + vrow[o + 1], // F, Right
                szg * frf + rw[w],               // G, Right
                szf * cg.full[w] + vrow[o + 2],  // F, Heavy
                szg * af + hw[w],                // G, Heavy
            ];
            let pick = chooser.pick(size_f, size_g, &costs);
            let cmin = costs[pick as usize];
            choices[v * ng + w] = pick;

            prow[o] += if roles & 1 != 0 { vrow[o] } else { cmin };
            prow[o + 1] += if roles & 2 != 0 { vrow[o + 1] } else { cmin };
            prow[o + 2] += if roles & 4 != 0 { vrow[o + 2] } else { cmin };

            if let Some(p) = g.parent(wid) {
                let pw = p.idx();
                let groles_w = groles[w];
                lw[pw] += if groles_w & 1 != 0 { lw[w] } else { cmin };
                rw[pw] += if groles_w & 2 != 0 { rw[w] } else { cmin };
                hw[pw] += if groles_w & 4 != 0 { hw[w] } else { cmin };
            }
            if v == nf - 1 && w == ng - 1 {
                root_cost = cmin;
            }
        }

        // This node's pairs are done: its row is dead, recycle it.
        if vslot != NO_ROW {
            rows[vslot as usize] = vrow_owned;
            row_free.push(vslot);
        }
        if fparent.is_none() {
            row_free.push(pslot);
        }
    }

    Strategy {
        ng,
        choices,
        cost: root_cost,
    }
}

/// The original dense formulation of Algorithm 2 — three full `nf × ng`
/// u64 cost matrices — kept verbatim as the equivalence oracle for the
/// row-recycled [`compute_strategy_in`].
#[cfg(test)]
pub(crate) fn compute_strategy_dense<L, Ch: Chooser>(
    f: &Tree<L>,
    g: &Tree<L>,
    chooser: &Ch,
) -> Strategy {
    let nf = f.len();
    let ng = g.len();
    let cf = rted_tree::counts::DecompCounts::new(f);
    let cg = rted_tree::counts::DecompCounts::new(g);

    let mut froles = Vec::new();
    let mut groles = Vec::new();
    child_roles_into(f, &mut froles);
    child_roles_into(g, &mut groles);

    // Cost-sum arrays over pairs (Lv/Rv/Hv) and per-G-node (Lw/Rw/Hw,
    // reset for every v).
    let mut lv = vec![0u64; nf * ng];
    let mut rv = vec![0u64; nf * ng];
    let mut hv = vec![0u64; nf * ng];
    let mut lw = vec![0u64; ng];
    let mut rw = vec![0u64; ng];
    let mut hw = vec![0u64; ng];
    let mut choices = vec![0u8; nf * ng];
    let mut root_cost = 0u64;

    #[allow(clippy::needless_range_loop)]
    for v in 0..nf {
        lw.iter_mut().for_each(|x| *x = 0);
        rw.iter_mut().for_each(|x| *x = 0);
        hw.iter_mut().for_each(|x| *x = 0);
        let vid = NodeId(v as u32);
        let size_f = f.size(vid);
        let szf = size_f as u64;
        let af = cf.full[v];
        let flf = cf.left[v];
        let frf = cf.right[v];
        let fparent = f.parent(vid);
        for w in 0..ng {
            let wid = NodeId(w as u32);
            let size_g = g.size(wid);
            let szg = size_g as u64;
            let idx = v * ng + w;
            let costs: [u64; 6] = [
                szf * cg.left[w] + lv[idx],  // F, Left
                szg * flf + lw[w],           // G, Left
                szf * cg.right[w] + rv[idx], // F, Right
                szg * frf + rw[w],           // G, Right
                szf * cg.full[w] + hv[idx],  // F, Heavy
                szg * af + hw[w],            // G, Heavy
            ];
            let pick = chooser.pick(size_f, size_g, &costs);
            let cmin = costs[pick as usize];
            choices[idx] = pick;

            if let Some(p) = fparent {
                let pidx = p.idx() * ng + w;
                let roles = froles[v];
                lv[pidx] += if roles & 1 != 0 { lv[idx] } else { cmin };
                rv[pidx] += if roles & 2 != 0 { rv[idx] } else { cmin };
                hv[pidx] += if roles & 4 != 0 { hv[idx] } else { cmin };
            }
            if let Some(p) = g.parent(wid) {
                let pw = p.idx();
                let roles = groles[w];
                lw[pw] += if roles & 1 != 0 { lw[w] } else { cmin };
                rw[pw] += if roles & 2 != 0 { rw[w] } else { cmin };
                hw[pw] += if roles & 4 != 0 { hw[w] } else { cmin };
            }
            if v == nf - 1 && w == ng - 1 {
                root_cost = cmin;
            }
        }
    }

    Strategy {
        ng,
        choices,
        cost: root_cost,
    }
}

/// Computes the optimal LRH strategy (RTED's first phase, Algorithm 2).
pub fn optimal_strategy<L>(f: &Tree<L>, g: &Tree<L>) -> Strategy {
    compute_strategy(f, g, &OptimalChooser)
}

/// The exact number of relevant subproblems of GTED under `chooser`'s
/// strategy — the analytic counterpart of the executor's instrumented
/// counter.
pub fn strategy_cost<L, Ch: Chooser>(f: &Tree<L>, g: &Tree<L>, chooser: &Ch) -> u64 {
    compute_strategy(f, g, chooser).cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use rted_tree::parse_bracket;

    #[test]
    fn example4_all_costs_equal_eight() {
        // §6.2 Example 4: F = {3{1}{2}}, G = {2{1}}. All six options cost 8.
        let f = parse_bracket("{3{1}{2}}").unwrap();
        let g = parse_bracket("{2{1}}").unwrap();
        for choice in PathChoice::ALL {
            let cost = strategy_cost(&f, &g, &FixedChooser(choice));
            assert_eq!(cost, 8, "{choice}");
        }
        let opt = optimal_strategy(&f, &g);
        assert_eq!(opt.cost, 8);
    }

    #[test]
    fn optimal_never_worse_than_fixed() {
        let cases = [
            ("{a{b{c}{d}}{e}}", "{x{y}{z{w{q}}}}"),
            ("{A{C}{B{G}{E{F}}{D}}}", "{A{B{D}{E{F}}}{C{G}}}"),
            ("{a{b{c{d{e{f}}}}}}", "{a{b}{c}{d}{e}{f}}"),
        ];
        for (a, b) in cases {
            let f = parse_bracket(a).unwrap();
            let g = parse_bracket(b).unwrap();
            let opt = optimal_strategy(&f, &g).cost;
            for choice in PathChoice::ALL {
                let fixed = strategy_cost(&f, &g, &FixedChooser(choice));
                assert!(opt <= fixed, "{a} vs {b}: opt {opt} > {choice} {fixed}");
            }
            let dem = strategy_cost(&f, &g, &DemaineChooser);
            assert!(opt <= dem);
        }
    }

    #[test]
    fn fixed_single_side_strategy_cost_is_product() {
        // For the constant F-Left strategy the recursion unrolls to
        // |F(F,ΓL)| × |F(G,ΓL)| (G is never decomposed).
        use rted_tree::counts::DecompCounts;
        let f = parse_bracket("{a{b{c}{d}}{e{f}{g}}}").unwrap();
        let g = parse_bracket("{A{C}{B{G}{E{F}}{D}}}").unwrap();
        let cf = DecompCounts::new(&f);
        let cg = DecompCounts::new(&g);
        let zl = strategy_cost(
            &f,
            &g,
            &FixedChooser(PathChoice {
                side: Side::F,
                kind: PathKind::Left,
            }),
        );
        assert_eq!(zl, cf.left_of(f.root()) * cg.left_of(g.root()));
        let zr = strategy_cost(
            &f,
            &g,
            &FixedChooser(PathChoice {
                side: Side::F,
                kind: PathKind::Right,
            }),
        );
        assert_eq!(zr, cf.right_of(f.root()) * cg.right_of(g.root()));
    }

    #[test]
    fn single_nodes_cost_one() {
        let f = parse_bracket("{a}").unwrap();
        let g = parse_bracket("{b}").unwrap();
        assert_eq!(optimal_strategy(&f, &g).cost, 1);
    }

    #[test]
    fn code_roundtrip() {
        for c in PathChoice::ALL {
            assert_eq!(PathChoice::from_code(c.code()), c);
        }
    }

    #[test]
    fn strategy_matrix_has_choice_for_every_pair() {
        let f = parse_bracket("{a{b}{c{d}}}").unwrap();
        let g = parse_bracket("{x{y{z}}}").unwrap();
        let s = optimal_strategy(&f, &g);
        for v in f.nodes() {
            for w in g.nodes() {
                let _ = s.choice(v, w); // must not panic
            }
        }
    }

    /// Asserts the recycled strategy equals the dense oracle bit for bit:
    /// same cost and the same choice at every pair, for every chooser.
    fn assert_matches_dense(f: &Tree<String>, g: &Tree<String>, ctx: &str) {
        fn check<Ch: Chooser>(f: &Tree<String>, g: &Tree<String>, ch: &Ch, ctx: &str, ci: u32) {
            let dense = compute_strategy_dense(f, g, ch);
            let recycled = compute_strategy(f, g, ch);
            assert_eq!(recycled.cost, dense.cost, "{ctx}: cost, chooser {ci}");
            for v in f.nodes() {
                for w in g.nodes() {
                    assert_eq!(
                        recycled.choice(v, w),
                        dense.choice(v, w),
                        "{ctx}: choice ({v},{w}), chooser {ci}"
                    );
                }
            }
        }
        check(f, g, &OptimalChooser, ctx, 0);
        check(f, g, &DemaineChooser, ctx, 1);
        check(f, g, &SubsetChooser::lr_only(), ctx, 2);
        check(f, g, &FixedChooser(PathChoice::ALL[4]), ctx, 3);
    }

    #[test]
    fn recycled_matches_dense_on_fixed_cases() {
        let cases = [
            ("{a}", "{b}"),
            ("{a{b{c}{d}}{e}}", "{x{y}{z{w{q}}}}"),
            ("{A{C}{B{G}{E{F}}{D}}}", "{A{B{D}{E{F}}}{C{G}}}"),
            ("{a{b{c{d{e{f}}}}}}", "{a{b}{c}{d}{e}{f}}"),
            ("{a{a}{a}{a}}", "{a{a{a}}}"),
        ];
        for (a, b) in cases {
            let f = parse_bracket(a).unwrap();
            let g = parse_bracket(b).unwrap();
            assert_matches_dense(&f, &g, &format!("{a} vs {b}"));
        }
    }

    /// Random ordered tree over a 3-letter alphabet: node `i ≥ 1` becomes
    /// the next child of a uniformly chosen earlier node.
    fn random_tree(rng: &mut impl rand::RngExt, n: usize) -> Tree<String> {
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 1..n {
            let p = rng.random_range(0..i);
            children[p].push(i as u32);
        }
        // Convert insertion ids to postorder ids.
        let mut post_of = vec![u32::MAX; n];
        let mut order = Vec::with_capacity(n);
        let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if *i < children[v as usize].len() {
                let c = children[v as usize][*i];
                *i += 1;
                stack.push((c, 0));
            } else {
                post_of[v as usize] = order.len() as u32;
                order.push(v);
                stack.pop();
            }
        }
        let labels: Vec<String> = order
            .iter()
            .map(|&v| format!("{}", (v * 7 + 3) % 3))
            .collect();
        let post_children: Vec<Vec<u32>> = order
            .iter()
            .map(|&v| {
                children[v as usize]
                    .iter()
                    .map(|&c| post_of[c as usize])
                    .collect()
            })
            .collect();
        Tree::from_postorder(labels, post_children)
    }

    #[test]
    fn recycled_matches_dense_on_random_trees() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5712_ec0d);
        for case in 0..60 {
            let nf = rng.random_range(1..18);
            let ng = rng.random_range(1..18);
            let f = random_tree(&mut rng, nf);
            let g = random_tree(&mut rng, ng);
            assert_matches_dense(&f, &g, &format!("random case {case}"));
        }
    }

    #[test]
    fn recycled_strategy_reuses_one_workspace() {
        // One workspace across differently-sized pairs must keep matching
        // the dense oracle (stale state from a bigger pair is invisible).
        let mut ws = Workspace::new();
        let cases = [
            ("{A{C}{B{G}{E{F}}{D}}}", "{a{b{c{d{e{f}}}}}}"),
            ("{a}", "{b{c}}"),
            ("{a{b}{c}{d}{e}}", "{x{y{z}}}"),
        ];
        for (a, b) in cases {
            let f = parse_bracket(a).unwrap();
            let g = parse_bracket(b).unwrap();
            let dense = compute_strategy_dense(&f, &g, &OptimalChooser);
            let recycled = compute_strategy_in(&f, &g, &OptimalChooser, &mut ws);
            assert_eq!(recycled.cost, dense.cost, "{a} vs {b}");
            for v in f.nodes() {
                for w in g.nodes() {
                    assert_eq!(recycled.choice(v, w), dense.choice(v, w), "{a} vs {b}");
                }
            }
            ws.recycle(recycled);
        }
    }

    #[test]
    fn live_rows_stay_far_below_dense() {
        // A chain keeps ≤ 2 live rows; a full binary tree ≤ depth + 1. The
        // dense formulation would keep 3·|F| rows (here |F| = 31 / 63).
        let chain = {
            let mut s = String::from("{a");
            for _ in 0..62 {
                s.push_str("{a");
            }
            s.push_str(&"}".repeat(63));
            parse_bracket(&s).unwrap()
        };
        let g = parse_bracket("{x{y}{z}}").unwrap();
        let mut ws = Workspace::new();
        compute_strategy_in(&chain, &g, &OptimalChooser, &mut ws);
        assert!(
            ws.strategy_rows_peak() <= 3,
            "chain peaked at {} live rows",
            ws.strategy_rows_peak()
        );

        fn full_binary(depth: u32) -> String {
            if depth == 0 {
                "{l}".to_string()
            } else {
                format!("{{i{}{}}}", full_binary(depth - 1), full_binary(depth - 1))
            }
        }
        let fb = parse_bracket(&full_binary(4)).unwrap(); // 31 nodes
        let mut ws = Workspace::new();
        compute_strategy_in(&fb, &g, &OptimalChooser, &mut ws);
        assert!(
            ws.strategy_rows_peak() <= 6, // depth + root throwaway
            "full binary peaked at {} live rows",
            ws.strategy_rows_peak()
        );
    }
}
