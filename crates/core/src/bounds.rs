//! Lower bounds on the unit-cost tree edit distance.
//!
//! §7 of the paper surveys bounds (string edit distance on serializations,
//! binary branches, pq-grams) used to prune exact computations in
//! similarity joins. This module provides the two cheapest sound bounds:
//!
//! * **size bound** — `|‖F‖ − ‖G‖| ≤ TED(F, G)`: any mapping leaves at
//!   least the size difference unmapped;
//! * **label histogram bound** — `max(‖F‖, ‖G‖) − |hist(F) ∩ hist(G)| ≤
//!   TED(F, G)`: a mapping of `m` pairs with `r` renames costs
//!   `(‖F‖ − m) + (‖G‖ − m) + r`; since at most `|hist ∩|` pairs can be
//!   rename-free, the cost is at least `‖F‖ + ‖G‖ − m − |hist ∩|` ≥
//!   `max(‖F‖, ‖G‖) − |hist ∩|`.
//!
//! Both are valid for any cost model whose deletes/inserts cost ≥ 1 and
//! renames of distinct labels cost ≥ 1 (in particular [`crate::UnitCost`]).

use rted_tree::Tree;
use std::collections::HashMap;

/// The size lower bound `|‖F‖ − ‖G‖|`.
#[inline]
pub fn size_lower_bound<L>(f: &Tree<L>, g: &Tree<L>) -> f64 {
    (f.len() as f64 - g.len() as f64).abs()
}

/// A label multiset, precomputed once per tree for repeated join probes.
#[derive(Debug, Clone)]
pub struct LabelHistogram<L> {
    counts: HashMap<L, u32>,
    size: usize,
}

impl<L: Eq + std::hash::Hash + Clone> LabelHistogram<L> {
    /// Builds the histogram of `tree`'s labels.
    pub fn new(tree: &Tree<L>) -> Self {
        let mut counts: HashMap<L, u32> = HashMap::with_capacity(tree.len());
        for v in tree.nodes() {
            *counts.entry(tree.label(v).clone()).or_insert(0) += 1;
        }
        LabelHistogram { counts, size: tree.len() }
    }

    /// Number of nodes in the underlying tree.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Size of the multiset intersection with `other`.
    pub fn intersection(&self, other: &LabelHistogram<L>) -> usize {
        // Iterate the smaller map.
        let (small, large) = if self.counts.len() <= other.counts.len() {
            (&self.counts, &other.counts)
        } else {
            (&other.counts, &self.counts)
        };
        small
            .iter()
            .map(|(l, &c)| c.min(large.get(l).copied().unwrap_or(0)) as usize)
            .sum()
    }

    /// The histogram lower bound between the two underlying trees.
    pub fn lower_bound(&self, other: &LabelHistogram<L>) -> f64 {
        let common = self.intersection(other);
        (self.size.max(other.size) - common) as f64
    }
}

/// The combined (max of size and histogram) lower bound.
pub fn lower_bound<L: Eq + std::hash::Hash + Clone>(f: &Tree<L>, g: &Tree<L>) -> f64 {
    let h = LabelHistogram::new(f).lower_bound(&LabelHistogram::new(g));
    size_lower_bound(f, g).max(h)
}

/// A trivial upper bound: delete all of `F`, insert all of `G` — except
/// the root pair can always be mapped, so `‖F‖ + ‖G‖ − 2 + [roots differ]`
/// bounds the unit-cost distance from above.
pub fn upper_bound<L: PartialEq>(f: &Tree<L>, g: &Tree<L>) -> f64 {
    let rename = if f.label(f.root()) == g.label(g.root()) { 0.0 } else { 1.0 };
    (f.len() + g.len()) as f64 - 2.0 + rename
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rted::ted;
    use rted_tree::parse_bracket;

    #[test]
    fn bounds_bracket_the_distance_on_samples() {
        let cases = [
            ("{a}", "{a}"),
            ("{a{b}{c}}", "{a{b}{c}}"),
            ("{a{b}{c}}", "{x{y}{z}}"),
            ("{a{b{c}{d}}{e}}", "{a{e}{b{c}{d}}}"),
            ("{a{a}{a}{a}{a}}", "{a{a{a{a{a}}}}}"),
            ("{a{b}}", "{c{d{e}{f}}{g}}"),
        ];
        for (a, b) in cases {
            let f = parse_bracket(a).unwrap();
            let g = parse_bracket(b).unwrap();
            let d = ted(&f, &g);
            let lo = lower_bound(&f, &g);
            let hi = upper_bound(&f, &g);
            assert!(lo <= d, "{a} vs {b}: lb {lo} > {d}");
            assert!(d <= hi, "{a} vs {b}: ub {hi} < {d}");
        }
    }

    #[test]
    fn histogram_bound_beats_size_bound_on_disjoint_labels() {
        // Same sizes, disjoint labels: size bound is 0, histogram bound n.
        let f = parse_bracket("{a{b}{c}}").unwrap();
        let g = parse_bracket("{x{y}{z}}").unwrap();
        assert_eq!(size_lower_bound(&f, &g), 0.0);
        assert_eq!(lower_bound(&f, &g), 3.0);
        assert_eq!(ted(&f, &g), 3.0); // bound is tight here
    }

    #[test]
    fn histogram_intersection_is_multiset() {
        let f = parse_bracket("{a{a}{a}{b}}").unwrap();
        let g = parse_bracket("{a{a}{b}{b}}").unwrap();
        let hf = LabelHistogram::new(&f);
        let hg = LabelHistogram::new(&g);
        assert_eq!(hf.intersection(&hg), 3); // two a's + one b
        assert_eq!(hf.lower_bound(&hg), 1.0);
    }

    #[test]
    fn bounds_on_random_trees() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n1 = rng.random_range(1..30usize);
            let n2 = rng.random_range(1..30usize);
            let mk = |n: usize, rng: &mut StdRng| {
                let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
                for i in 1..n {
                    let p = rng.random_range(0..i) as u32;
                    children[p as usize].push(i as u32);
                }
                let mut post_of = vec![u32::MAX; n];
                let mut order = Vec::new();
                let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
                while let Some(&mut (v, ref mut i)) = stack.last_mut() {
                    if *i < children[v as usize].len() {
                        let c = children[v as usize][*i];
                        *i += 1;
                        stack.push((c, 0));
                    } else {
                        post_of[v as usize] = order.len() as u32;
                        order.push(v);
                        stack.pop();
                    }
                }
                let labels: Vec<u32> = (0..n).map(|_| rng.random_range(0..5u32)).collect();
                let pc: Vec<Vec<u32>> = order
                    .iter()
                    .map(|&v| children[v as usize].iter().map(|&c| post_of[c as usize]).collect())
                    .collect();
                Tree::from_postorder(labels, pc)
            };
            let f = mk(n1, &mut rng);
            let g = mk(n2, &mut rng);
            let d = ted(&f, &g);
            assert!(lower_bound(&f, &g) <= d, "seed {seed}");
            assert!(d <= upper_bound(&f, &g), "seed {seed}");
        }
    }
}
