//! Lower bounds on the unit-cost tree edit distance.
//!
//! §7 of the paper surveys bounds (string edit distance on serializations,
//! binary branches, pq-grams) used to prune exact computations in
//! similarity joins. This module provides a family of cheap sound bounds,
//! unified under the [`LowerBound`] trait so similarity-search engines can
//! stage them into a filter pipeline (cheapest first):
//!
//! * **size bound** — `|‖F‖ − ‖G‖| ≤ TED(F, G)`: any mapping leaves at
//!   least the size difference unmapped;
//! * **depth bound** — `|depth(F) − depth(G)| ≤ TED(F, G)`: a delete moves
//!   the deleted node's descendants up one level, so the maximum depth
//!   changes by at most 1 per edit operation (inserts symmetrically, and
//!   renames not at all);
//! * **leaf bound** — `|leaves(F) − leaves(G)| ≤ TED(F, G)`: deleting a
//!   leaf removes one leaf but may turn its parent into a leaf, deleting
//!   an internal node splices its children in place — either way the leaf
//!   count changes by at most 1 per operation;
//! * **degree bound** — `|internal(F) − internal(G)| ≤ TED(F, G)` where
//!   `internal` counts nodes of degree ≥ 1: each operation creates or
//!   destroys at most one internal node;
//! * **label histogram bound** — `max(‖F‖, ‖G‖) − |hist(F) ∩ hist(G)| ≤
//!   TED(F, G)`: a mapping of `m` pairs with `r` renames costs
//!   `(‖F‖ − m) + (‖G‖ − m) + r`; since at most `|hist ∩|` pairs can be
//!   rename-free, the cost is at least `‖F‖ + ‖G‖ − m − |hist ∩|` ≥
//!   `max(‖F‖, ‖G‖) − |hist ∩|`.
//!
//! * **pq-gram bound** — `max(⌈Δ_pre/2p⌉, ⌈Δ_post/2q⌉) ≤ TED(F, G)` over
//!   the serialized pq-gram profiles of [`crate::pqgram`]: each tree edit
//!   is one string edit on either traversal, and one string edit perturbs
//!   at most `w` length-`w` grams — the only stage sensitive to label
//!   *arrangement*, not just label counts and shape statistics.
//!
//! All bounds are valid for any cost model whose deletes/inserts cost ≥ 1;
//! the histogram and pq-gram bounds additionally need renames of distinct
//! labels to cost ≥ 1 (both hold for [`crate::UnitCost`]).
//!
//! Every stage reads precomputed per-tree data from a [`TreeSketch`], so a
//! corpus can be analyzed once at build time and probed millions of times.

use crate::pqgram::{PqGramProfile, PqParams, PqScratch};
use rted_tree::Tree;
use std::collections::HashMap;

/// The size lower bound `|‖F‖ − ‖G‖|`.
#[inline]
pub fn size_lower_bound<L>(f: &Tree<L>, g: &Tree<L>) -> f64 {
    (f.len() as f64 - g.len() as f64).abs()
}

/// A label multiset, precomputed once per tree for repeated join probes.
#[derive(Debug, Clone)]
pub struct LabelHistogram<L> {
    counts: HashMap<L, u32>,
    size: usize,
}

impl<L: Eq + std::hash::Hash + Clone> LabelHistogram<L> {
    /// Builds the histogram of `tree`'s labels.
    pub fn new(tree: &Tree<L>) -> Self {
        let mut counts: HashMap<L, u32> = HashMap::with_capacity(tree.len());
        for v in tree.nodes() {
            *counts.entry(tree.label(v).clone()).or_insert(0) += 1;
        }
        LabelHistogram {
            counts,
            size: tree.len(),
        }
    }

    /// Rebuilds a histogram from stored `(label, count)` pairs, e.g. when
    /// loading a serialized corpus. The tree size is derived from the
    /// counts, so the histogram is consistent by construction; pairs with a
    /// zero count are dropped (they must never influence the intersection).
    ///
    /// Additions saturate instead of overflowing: the pairs may come from
    /// untrusted bytes, and a saturated total then fails the caller's
    /// `size() == n` consistency check rather than panicking here.
    pub fn from_counts(pairs: impl IntoIterator<Item = (L, u32)>) -> Self {
        let mut counts: HashMap<L, u32> = HashMap::new();
        let mut size = 0usize;
        for (label, count) in pairs {
            if count == 0 {
                continue;
            }
            size = size.saturating_add(count as usize);
            let slot = counts.entry(label).or_insert(0);
            *slot = slot.saturating_add(count);
        }
        LabelHistogram { counts, size }
    }

    /// Number of nodes in the underlying tree.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of distinct labels.
    #[inline]
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The `(label, count)` pairs, in arbitrary order. Serializers must
    /// impose their own canonical order (e.g. by interned label id) if they
    /// need deterministic output.
    pub fn counts(&self) -> impl Iterator<Item = (&L, u32)> {
        self.counts.iter().map(|(l, &c)| (l, c))
    }

    /// Size of the multiset intersection with `other`.
    pub fn intersection(&self, other: &LabelHistogram<L>) -> usize {
        // Iterate the smaller map.
        let (small, large) = if self.counts.len() <= other.counts.len() {
            (&self.counts, &other.counts)
        } else {
            (&other.counts, &self.counts)
        };
        small
            .iter()
            .map(|(l, &c)| c.min(large.get(l).copied().unwrap_or(0)) as usize)
            .sum()
    }

    /// The histogram lower bound between the two underlying trees.
    pub fn lower_bound(&self, other: &LabelHistogram<L>) -> f64 {
        let common = self.intersection(other);
        (self.size.max(other.size) - common) as f64
    }
}

/// The combined (max over all [`standard_bounds`] stages) lower bound.
pub fn lower_bound<L: Eq + std::hash::Hash + Clone>(f: &Tree<L>, g: &Tree<L>) -> f64 {
    let (sf, sg) = (TreeSketch::new(f), TreeSketch::new(g));
    // Hand-enumerated (no boxing) but must mirror standard_bounds();
    // `lower_bound_matches_standard_stages` guards against drift.
    LowerBound::<L>::bound(&SizeBound, &sf, &sg)
        .max(LowerBound::<L>::bound(&DepthBound, &sf, &sg))
        .max(LowerBound::<L>::bound(&LeafBound, &sf, &sg))
        .max(LowerBound::<L>::bound(&DegreeBound, &sf, &sg))
        .max(HistogramBound.bound(&sf, &sg))
        .max(LowerBound::<L>::bound(&PqGramBound, &sf, &sg))
}

/// Per-tree summary computed once in O(n), consumed by every
/// [`LowerBound`] stage. Corpus indexes build one sketch per tree at
/// insert time and never touch the tree again during filtering.
#[derive(Debug, Clone)]
pub struct TreeSketch<L> {
    /// Node count `‖T‖`.
    pub size: usize,
    /// Maximum node depth (root = 0).
    pub max_depth: u32,
    /// Number of leaves.
    pub leaves: usize,
    /// Number of internal (degree ≥ 1) nodes.
    pub internal: usize,
    /// Label multiset.
    pub histogram: LabelHistogram<L>,
    /// Serialized pq-gram profile (see [`crate::pqgram`]).
    pub pq: PqGramProfile,
}

impl<L: Eq + std::hash::Hash + Clone> TreeSketch<L> {
    /// Analyzes `tree` once, under the default pq-gram params.
    pub fn new(tree: &Tree<L>) -> Self {
        Self::with_pq(tree, PqParams::default(), &mut PqScratch::default())
    }

    /// [`new`](Self::new) with explicit pq-gram params, drawing profile
    /// scratch from `scratch` — the bulk path for corpus builds, which
    /// analyze thousands of trees through one reusable arena.
    pub fn with_pq(tree: &Tree<L>, params: PqParams, scratch: &mut PqScratch) -> Self {
        let leaves = tree.leaf_count();
        TreeSketch {
            size: tree.len(),
            max_depth: tree.max_depth(),
            leaves,
            internal: tree.len() - leaves,
            histogram: LabelHistogram::new(tree),
            pq: PqGramProfile::compute_in(tree, params, scratch),
        }
    }

    /// Reassembles a sketch from previously computed parts (a deserialized
    /// corpus entry), skipping the O(n) tree analysis.
    ///
    /// `internal` is derived from `size − leaves` rather than stored, and
    /// the histogram carries its own node count; callers loading untrusted
    /// data should verify `histogram.size() == size` and `leaves <= size`
    /// before trusting the bounds computed from the sketch.
    pub fn from_parts(
        size: usize,
        max_depth: u32,
        leaves: usize,
        histogram: LabelHistogram<L>,
        pq: PqGramProfile,
    ) -> Self {
        TreeSketch {
            size,
            max_depth,
            leaves,
            internal: size.saturating_sub(leaves),
            histogram,
            pq,
        }
    }
}

/// A sound lower bound on `TED(F, G)` computed from two [`TreeSketch`]es.
///
/// Implementations must guarantee `bound(f, g) ≤ TED(F, G)` for every tree
/// pair under any cost model with delete/insert costs ≥ 1 and (for
/// label-sensitive bounds) renames of distinct labels ≥ 1.
pub trait LowerBound<L> {
    /// Stage name used in filter statistics.
    fn name(&self) -> &'static str;

    /// The lower bound value for the pair of sketched trees.
    fn bound(&self, f: &TreeSketch<L>, g: &TreeSketch<L>) -> f64;
}

/// `|‖F‖ − ‖G‖|` — see module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct SizeBound;

impl<L> LowerBound<L> for SizeBound {
    fn name(&self) -> &'static str {
        "size"
    }
    fn bound(&self, f: &TreeSketch<L>, g: &TreeSketch<L>) -> f64 {
        (f.size as f64 - g.size as f64).abs()
    }
}

/// `|depth(F) − depth(G)|` — see module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct DepthBound;

impl<L> LowerBound<L> for DepthBound {
    fn name(&self) -> &'static str {
        "depth"
    }
    fn bound(&self, f: &TreeSketch<L>, g: &TreeSketch<L>) -> f64 {
        (f.max_depth as f64 - g.max_depth as f64).abs()
    }
}

/// `|leaves(F) − leaves(G)|` — see module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeafBound;

impl<L> LowerBound<L> for LeafBound {
    fn name(&self) -> &'static str {
        "leaf"
    }
    fn bound(&self, f: &TreeSketch<L>, g: &TreeSketch<L>) -> f64 {
        (f.leaves as f64 - g.leaves as f64).abs()
    }
}

/// `|internal(F) − internal(G)|` over degree-≥-1 nodes — see module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct DegreeBound;

impl<L> LowerBound<L> for DegreeBound {
    fn name(&self) -> &'static str {
        "degree"
    }
    fn bound(&self, f: &TreeSketch<L>, g: &TreeSketch<L>) -> f64 {
        (f.internal as f64 - g.internal as f64).abs()
    }
}

/// `max(‖F‖, ‖G‖) − |hist(F) ∩ hist(G)|` — see module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct HistogramBound;

impl<L: Eq + std::hash::Hash + Clone> LowerBound<L> for HistogramBound {
    fn name(&self) -> &'static str {
        "histogram"
    }
    fn bound(&self, f: &TreeSketch<L>, g: &TreeSketch<L>) -> f64 {
        f.histogram.lower_bound(&g.histogram)
    }
}

/// `max(⌈Δ_pre/2p⌉, ⌈Δ_post/2q⌉)` over the serialized pq-gram profiles —
/// see module docs and [`crate::pqgram`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PqGramBound;

impl<L> LowerBound<L> for PqGramBound {
    fn name(&self) -> &'static str {
        "pqgram"
    }
    fn bound(&self, f: &TreeSketch<L>, g: &TreeSketch<L>) -> f64 {
        f.pq.lower_bound(&g.pq)
    }
}

/// The standard filter staging: every bound, cheapest first. The histogram
/// and pq-gram bounds go last — they are the stages that are not O(1) per
/// pair (the pq-gram merge is O(n) over sorted arrays, cache-friendlier
/// than the histogram's hash probes but sensitive to more structure, so it
/// runs after the histogram has had its chance).
pub fn standard_bounds<L: Eq + std::hash::Hash + Clone>(
) -> Vec<Box<dyn LowerBound<L> + Send + Sync>> {
    vec![
        Box::new(SizeBound),
        Box::new(DepthBound),
        Box::new(LeafBound),
        Box::new(DegreeBound),
        Box::new(HistogramBound),
        Box::new(PqGramBound),
    ]
}

/// A trivial upper bound: delete all of `F`, insert all of `G` — except
/// the root pair can always be mapped, so `‖F‖ + ‖G‖ − 2 + [roots differ]`
/// bounds the unit-cost distance from above.
pub fn upper_bound<L: PartialEq>(f: &Tree<L>, g: &Tree<L>) -> f64 {
    let rename = if f.label(f.root()) == g.label(g.root()) {
        0.0
    } else {
        1.0
    };
    (f.len() + g.len()) as f64 - 2.0 + rename
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rted::ted;
    use rted_tree::parse_bracket;

    #[test]
    fn bounds_bracket_the_distance_on_samples() {
        let cases = [
            ("{a}", "{a}"),
            ("{a{b}{c}}", "{a{b}{c}}"),
            ("{a{b}{c}}", "{x{y}{z}}"),
            ("{a{b{c}{d}}{e}}", "{a{e}{b{c}{d}}}"),
            ("{a{a}{a}{a}{a}}", "{a{a{a{a{a}}}}}"),
            ("{a{b}}", "{c{d{e}{f}}{g}}"),
        ];
        for (a, b) in cases {
            let f = parse_bracket(a).unwrap();
            let g = parse_bracket(b).unwrap();
            let d = ted(&f, &g);
            let lo = lower_bound(&f, &g);
            let hi = upper_bound(&f, &g);
            assert!(lo <= d, "{a} vs {b}: lb {lo} > {d}");
            assert!(d <= hi, "{a} vs {b}: ub {hi} < {d}");
        }
    }

    #[test]
    fn histogram_bound_beats_size_bound_on_disjoint_labels() {
        // Same sizes, disjoint labels: size bound is 0, histogram bound n.
        let f = parse_bracket("{a{b}{c}}").unwrap();
        let g = parse_bracket("{x{y}{z}}").unwrap();
        assert_eq!(size_lower_bound(&f, &g), 0.0);
        assert_eq!(lower_bound(&f, &g), 3.0);
        assert_eq!(ted(&f, &g), 3.0); // bound is tight here
    }

    #[test]
    fn histogram_intersection_is_multiset() {
        let f = parse_bracket("{a{a}{a}{b}}").unwrap();
        let g = parse_bracket("{a{a}{b}{b}}").unwrap();
        let hf = LabelHistogram::new(&f);
        let hg = LabelHistogram::new(&g);
        assert_eq!(hf.intersection(&hg), 3); // two a's + one b
        assert_eq!(hf.lower_bound(&hg), 1.0);
    }

    #[test]
    fn structural_stage_values() {
        // {a{b{c}}} : size 3, depth 2, 1 leaf, 2 internal.
        // {a{b}{c}} : size 3, depth 1, 2 leaves, 1 internal.
        let f = parse_bracket("{a{b{c}}}").unwrap();
        let g = parse_bracket("{a{b}{c}}").unwrap();
        let (sf, sg) = (TreeSketch::new(&f), TreeSketch::new(&g));
        assert_eq!(LowerBound::<String>::bound(&SizeBound, &sf, &sg), 0.0);
        assert_eq!(LowerBound::<String>::bound(&DepthBound, &sf, &sg), 1.0);
        assert_eq!(LowerBound::<String>::bound(&LeafBound, &sf, &sg), 1.0);
        assert_eq!(LowerBound::<String>::bound(&DegreeBound, &sf, &sg), 1.0);
        let d = ted(&f, &g);
        assert!(d >= 1.0);
    }

    #[test]
    fn every_stage_below_distance_on_samples() {
        let cases = [
            ("{a}", "{a{b}{c}{d}}"),
            ("{a{b{c{d}}}}", "{a{b}{c}{d}}"),
            ("{a{b}{c}}", "{x{y{z}}}"),
            ("{a{a{a}}{a}}", "{b{b}{b{b}}}"),
        ];
        for (a, b) in cases {
            let f = parse_bracket(a).unwrap();
            let g = parse_bracket(b).unwrap();
            let d = ted(&f, &g);
            let (sf, sg) = (TreeSketch::new(&f), TreeSketch::new(&g));
            for stage in standard_bounds::<String>() {
                let lb = stage.bound(&sf, &sg);
                assert!(
                    lb <= d,
                    "{} bound {lb} > ted {d} on {a} vs {b}",
                    stage.name()
                );
            }
        }
    }

    #[test]
    fn lower_bound_matches_standard_stages() {
        // Drift guard: lower_bound() hand-enumerates the stages for
        // allocation-free probing; it must stay the max over
        // standard_bounds(), or a newly added stage would be silently
        // missing from the combined bound.
        let cases = [
            ("{a{b}{c}}", "{x{y{z}}}"),
            ("{a{b{c{d}}}}", "{a{b}{c}{d}}"),
            ("{a}", "{a{a}{a}{a}}"),
        ];
        for (a, b) in cases {
            let f = parse_bracket(a).unwrap();
            let g = parse_bracket(b).unwrap();
            let (sf, sg) = (TreeSketch::new(&f), TreeSketch::new(&g));
            let folded = standard_bounds::<String>()
                .iter()
                .map(|s| s.bound(&sf, &sg))
                .fold(0.0, f64::max);
            assert_eq!(lower_bound(&f, &g), folded, "{a} vs {b}");
        }
    }

    #[test]
    fn bounds_on_random_trees() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n1 = rng.random_range(1..30usize);
            let n2 = rng.random_range(1..30usize);
            let mk = |n: usize, rng: &mut StdRng| {
                let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
                for i in 1..n {
                    let p = rng.random_range(0..i) as u32;
                    children[p as usize].push(i as u32);
                }
                let mut post_of = vec![u32::MAX; n];
                let mut order = Vec::new();
                let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
                while let Some(&mut (v, ref mut i)) = stack.last_mut() {
                    if *i < children[v as usize].len() {
                        let c = children[v as usize][*i];
                        *i += 1;
                        stack.push((c, 0));
                    } else {
                        post_of[v as usize] = order.len() as u32;
                        order.push(v);
                        stack.pop();
                    }
                }
                let labels: Vec<u32> = (0..n).map(|_| rng.random_range(0..5u32)).collect();
                let pc: Vec<Vec<u32>> = order
                    .iter()
                    .map(|&v| {
                        children[v as usize]
                            .iter()
                            .map(|&c| post_of[c as usize])
                            .collect()
                    })
                    .collect();
                Tree::from_postorder(labels, pc)
            };
            let f = mk(n1, &mut rng);
            let g = mk(n2, &mut rng);
            let d = ted(&f, &g);
            assert!(lower_bound(&f, &g) <= d, "seed {seed}");
            assert!(d <= upper_bound(&f, &g), "seed {seed}");
        }
    }
}
