//! Optimal edit mapping recovery and edit scripts.
//!
//! The distance algorithms report only the cost; applications (XML diff,
//! change detection — the paper's §1 motivation) need the *edit script*:
//! which nodes were deleted, inserted, or mapped (kept/renamed). This
//! module recovers an optimal mapping by re-running the Zhang–Shasha
//! forest DP along the optimal trace: the full keyroot DP gives all
//! subtree distances, then a backtrace walks each forest DP from the top
//! cell, descending into matched subtree pairs.
//!
//! Two entry points produce an [`EditMapping`]:
//!
//! * [`edit_mapping`] — self-contained, allocates its own scratch;
//! * [`edit_mapping_in`] — draws every buffer (keyroot DP tables,
//!   forest-DP sheets, the backtrace frame stack) from a reused
//!   [`Workspace`], so a **warm call allocates only the returned script**
//!   (one `Vec` for the ops — enforced by a counting-allocator test).
//!   This is the serving layer's `diff` path.
//!
//! [`EditMapping::script`] resolves the mapping against the two trees
//! into an [`EditScript`]: ordered, label-resolved operations
//! (delete / insert / rename / keep) plus summary counts — the
//! self-contained product the CLI, the serve protocol, and the examples
//! present to users.
//!
//! A valid edit mapping `M` is a set of node pairs that is one-to-one and
//! preserves both postorder (left-to-right) order and the ancestor
//! relation; its cost is `Σ cd(v)` over unmapped `v ∈ F` + `Σ ci(w)` over
//! unmapped `w ∈ G` + `Σ cr(v, w)` over pairs — the tree edit distance is
//! the minimum over all valid mappings (Tai 1979).

use crate::cost::CostModel;
use crate::workspace::Workspace;
use crate::zs::zhang_shasha_in;
use rted_tree::{NodeId, Tree};

/// One edit operation of a script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditOp {
    /// Delete node `v` of the first tree.
    Delete(NodeId),
    /// Insert node `w` of the second tree.
    Insert(NodeId),
    /// Map node `v` to node `w` (a rename when labels differ, otherwise a
    /// kept node).
    Map(NodeId, NodeId),
}

/// An optimal edit mapping between two trees.
#[derive(Debug, Clone, PartialEq)]
pub struct EditMapping {
    /// All operations; every node of both trees appears exactly once.
    pub ops: Vec<EditOp>,
    /// The mapping's cost (equals the tree edit distance).
    pub cost: f64,
}

impl EditMapping {
    /// The mapped pairs only.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.ops.iter().filter_map(|op| match op {
            EditOp::Map(v, w) => Some((*v, *w)),
            _ => None,
        })
    }

    /// Deleted nodes of the first tree.
    pub fn deletions(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ops.iter().filter_map(|op| match op {
            EditOp::Delete(v) => Some(*v),
            _ => None,
        })
    }

    /// Inserted nodes of the second tree.
    pub fn insertions(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ops.iter().filter_map(|op| match op {
            EditOp::Insert(w) => Some(*w),
            _ => None,
        })
    }

    /// Recomputes the cost of this mapping under `cm`.
    pub fn cost_under<L, C: CostModel<L>>(&self, f: &Tree<L>, g: &Tree<L>, cm: &C) -> f64 {
        self.ops
            .iter()
            .map(|op| match op {
                EditOp::Delete(v) => cm.delete(f.label(*v)),
                EditOp::Insert(w) => cm.insert(g.label(*w)),
                EditOp::Map(v, w) => cm.rename(f.label(*v), g.label(*w)),
            })
            .sum()
    }

    /// Resolves this mapping against the two trees into a label-carrying
    /// [`EditScript`]. A mapped pair becomes a `Rename` when the labels
    /// differ and a `Keep` otherwise — label equality, not the cost
    /// model, decides, so the classification is stable across models.
    pub fn script<L: PartialEq + std::fmt::Display>(&self, f: &Tree<L>, g: &Tree<L>) -> EditScript {
        let mut script = EditScript {
            ops: Vec::with_capacity(self.ops.len()),
            cost: self.cost,
            ..EditScript::default()
        };
        for op in &self.ops {
            script.ops.push(match op {
                EditOp::Delete(v) => {
                    script.deletes += 1;
                    ScriptOp::Delete {
                        node: v.idx(),
                        label: f.label(*v).to_string(),
                    }
                }
                EditOp::Insert(w) => {
                    script.inserts += 1;
                    ScriptOp::Insert {
                        node: w.idx(),
                        label: g.label(*w).to_string(),
                    }
                }
                EditOp::Map(v, w) => {
                    let (a, b) = (f.label(*v), g.label(*w));
                    if a == b {
                        script.keeps += 1;
                        ScriptOp::Keep {
                            from: v.idx(),
                            to: w.idx(),
                            label: a.to_string(),
                        }
                    } else {
                        script.renames += 1;
                        ScriptOp::Rename {
                            from: v.idx(),
                            to: w.idx(),
                            old: a.to_string(),
                            new: b.to_string(),
                        }
                    }
                }
            });
        }
        script
    }

    /// Checks the Tai mapping conditions: one-to-one, order-preserving,
    /// ancestor-preserving, and that every node appears exactly once.
    /// O(k²) — intended for tests and debugging.
    pub fn validate<L>(&self, f: &Tree<L>, g: &Tree<L>) -> Result<(), String> {
        let mut seen_f = vec![false; f.len()];
        let mut seen_g = vec![false; g.len()];
        let mark = |arr: &mut Vec<bool>, i: usize, side: &str| {
            if arr[i] {
                return Err(format!("{side} node {i} appears twice"));
            }
            arr[i] = true;
            Ok(())
        };
        for op in &self.ops {
            match op {
                EditOp::Delete(v) => mark(&mut seen_f, v.idx(), "F")?,
                EditOp::Insert(w) => mark(&mut seen_g, w.idx(), "G")?,
                EditOp::Map(v, w) => {
                    mark(&mut seen_f, v.idx(), "F")?;
                    mark(&mut seen_g, w.idx(), "G")?;
                }
            }
        }
        if !seen_f.iter().all(|&b| b) || !seen_g.iter().all(|&b| b) {
            return Err("some node missing from the script".into());
        }
        let pairs: Vec<(NodeId, NodeId)> = self.pairs().collect();
        for (i, &(v1, w1)) in pairs.iter().enumerate() {
            for &(v2, w2) in &pairs[i + 1..] {
                // Postorder order preservation.
                if (v1 < v2) != (w1 < w2) {
                    return Err(format!("order violated: ({v1},{w1}) vs ({v2},{w2})"));
                }
                // Ancestor preservation.
                let f_anc = f.in_subtree(v2, v1) || f.in_subtree(v1, v2);
                let g_anc = g.in_subtree(w2, w1) || g.in_subtree(w1, w2);
                let f_v1_anc_v2 = f.in_subtree(v2, v1);
                let g_w1_anc_w2 = g.in_subtree(w2, w1);
                if f_anc != g_anc || f_v1_anc_v2 != g_w1_anc_w2 {
                    return Err(format!("ancestry violated: ({v1},{w1}) vs ({v2},{w2})"));
                }
            }
        }
        Ok(())
    }
}

/// One resolved operation of an [`EditScript`]. Node ids are postorder
/// positions in the respective tree (`from`/`node` in the first tree,
/// `to`/`node` in the second).
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptOp {
    /// Remove a node of the first tree (children are promoted).
    Delete {
        /// Postorder id in the first tree.
        node: usize,
        /// The removed node's label.
        label: String,
    },
    /// Add a node of the second tree.
    Insert {
        /// Postorder id in the second tree.
        node: usize,
        /// The added node's label.
        label: String,
    },
    /// A mapped pair whose labels differ: relabel `old` to `new`.
    Rename {
        /// Postorder id in the first tree.
        from: usize,
        /// Postorder id in the second tree.
        to: usize,
        /// Label before.
        old: String,
        /// Label after.
        new: String,
    },
    /// A mapped pair with equal labels: the node survives unchanged.
    Keep {
        /// Postorder id in the first tree.
        from: usize,
        /// Postorder id in the second tree.
        to: usize,
        /// The shared label.
        label: String,
    },
}

/// A resolved edit script: ordered label-carrying operations plus summary
/// counts — the product of [`EditMapping::script`]. Self-contained (owns
/// its labels), so it can outlive the trees it was derived from; this is
/// what the serve protocol ships and the CLI prints.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EditScript {
    /// All operations, left-to-right; every node of both trees appears
    /// exactly once.
    pub ops: Vec<ScriptOp>,
    /// The mapping's cost under the model it was extracted with (equals
    /// the tree edit distance).
    pub cost: f64,
    /// Number of `Delete` ops.
    pub deletes: usize,
    /// Number of `Insert` ops.
    pub inserts: usize,
    /// Number of `Rename` ops.
    pub renames: usize,
    /// Number of `Keep` ops.
    pub keeps: usize,
}

impl EditScript {
    /// Operations that actually change the tree (everything but `Keep`).
    pub fn changes(&self) -> usize {
        self.deletes + self.inserts + self.renames
    }

    /// One-line summary, e.g. `2 delete, 1 insert, 0 rename, 5 keep`.
    pub fn summary(&self) -> String {
        format!(
            "{} delete, {} insert, {} rename, {} keep",
            self.deletes, self.inserts, self.renames, self.keeps
        )
    }

    /// Human-readable script, one operation per line (the `rted diff`
    /// text format).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            match op {
                ScriptOp::Delete { label, .. } => out.push_str(&format!("delete {label}\n")),
                ScriptOp::Insert { label, .. } => out.push_str(&format!("insert {label}\n")),
                ScriptOp::Rename { old, new, .. } => {
                    out.push_str(&format!("rename {old} -> {new}\n"))
                }
                ScriptOp::Keep { label, .. } => out.push_str(&format!("keep   {label}\n")),
            }
        }
        out
    }
}

/// Float comparison for backtrace decisions: exact for integer-valued cost
/// models, tolerant for general `f64` costs.
#[inline]
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

/// One frame of the iterative backtrace: a subtree pair `(x, y)` whose
/// forest DP has been materialized in the workspace sheet at this frame's
/// depth, currently backtraced at `(a, b)`. Lives in the
/// [`Workspace`] so the stack is reused across calls.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct TraceFrame {
    /// Subtree roots (view-local ranks = postorder + 1).
    x: u32,
    y: u32,
    /// Leftmost leaves of the two subtrees.
    lx: u32,
    ly: u32,
    /// Current backtrace position.
    a: u32,
    b: u32,
}

/// The read-only DP inputs of the backtrace, all left in the workspace by
/// [`zhang_shasha_in`]: the subtree-distance matrix, per-rank leftmost
/// leaves, and per-rank delete/insert costs (index 0 unused).
struct TraceCtx<'a, L, C> {
    f: &'a Tree<L>,
    g: &'a Tree<L>,
    cm: &'a C,
    td: &'a [f64],
    f_lml: &'a [u32],
    g_lml: &'a [u32],
    f_del: &'a [f64],
    g_ins: &'a [f64],
    ng: u32,
}

impl<L, C: CostModel<L>> TraceCtx<'_, L, C> {
    #[inline]
    fn td_at(&self, x: u32, y: u32) -> f64 {
        self.td[(x * (self.ng + 1) + y) as usize]
    }

    #[inline]
    fn del(&self, x: u32) -> f64 {
        self.f_del[x as usize]
    }

    #[inline]
    fn ins(&self, y: u32) -> f64 {
        self.g_ins[y as usize]
    }

    #[inline]
    fn ren(&self, x: u32, y: u32) -> f64 {
        self.cm
            .rename(self.f.label(NodeId(x - 1)), self.g.label(NodeId(y - 1)))
    }
}

/// Re-runs the forest DP for the subtree pair `(x, y)` into the pooled
/// sheet at depth `frames.len()` and pushes the frame, positioned at its
/// top cell. Returns the number of DP cells computed.
fn push_frame<L, C: CostModel<L>>(
    cx: &TraceCtx<'_, L, C>,
    sheets: &mut Vec<Vec<f64>>,
    frames: &mut Vec<TraceFrame>,
    x: u32,
    y: u32,
) -> u64 {
    let lx = cx.f_lml[x as usize];
    let ly = cx.g_lml[y as usize];
    let w = (y - ly + 2) as usize; // columns ly-1..=y
    let h = (x - lx + 2) as usize; // rows lx-1..=x
    let depth = frames.len();
    if sheets.len() == depth {
        sheets.push(Vec::new());
    }
    let fd = &mut sheets[depth];
    fd.clear();
    fd.resize(h * w, 0.0);
    let at = |a: u32, b: u32| ((a + 1 - lx) as usize) * w + (b + 1 - ly) as usize;
    for a in lx..=x {
        fd[at(a, ly - 1)] = fd[at(a - 1, ly - 1)] + cx.del(a);
    }
    for b in ly..=y {
        fd[at(lx - 1, b)] = fd[at(lx - 1, b - 1)] + cx.ins(b);
    }
    for a in lx..=x {
        let la = cx.f_lml[a as usize];
        for b in ly..=y {
            let lb = cx.g_lml[b as usize];
            let del = fd[at(a - 1, b)] + cx.del(a);
            let ins = fd[at(a, b - 1)] + cx.ins(b);
            let v = if la == lx && lb == ly {
                del.min(ins).min(fd[at(a - 1, b - 1)] + cx.ren(a, b))
            } else {
                del.min(ins).min(fd[at(la - 1, lb - 1)] + cx.td_at(a, b))
            };
            fd[at(a, b)] = v;
        }
    }
    debug_assert!(close(fd[at(x, y)], cx.td_at(x, y)), "trace DP mismatch");
    frames.push(TraceFrame {
        x,
        y,
        lx,
        ly,
        a: x,
        b: y,
    });
    (x - lx + 1) as u64 * (y - ly + 1) as u64
}

/// The backtrace driver: walks the frame stack, emitting one operation
/// per step (in right-to-left order — the caller reverses). A
/// subtree-match transition suspends the current frame at its resume
/// position and descends into a child frame; the parent's sheet stays
/// live in its pool slot until the child (and its descendants) finish.
fn backtrace<L, C: CostModel<L>>(
    cx: &TraceCtx<'_, L, C>,
    sheets: &mut Vec<Vec<f64>>,
    frames: &mut Vec<TraceFrame>,
    ops: &mut Vec<EditOp>,
) -> u64 {
    frames.clear();
    let mut cells = push_frame(cx, sheets, frames, cx.f.len() as u32, cx.ng);
    'frames: while let Some(fi) = frames.len().checked_sub(1) {
        let TraceFrame {
            x,
            y,
            lx,
            ly,
            mut a,
            mut b,
        } = frames[fi];
        loop {
            if a < lx && b < ly {
                frames.pop();
                continue 'frames;
            }
            if a < lx {
                for j in ly..=b {
                    ops.push(EditOp::Insert(NodeId(j - 1)));
                }
                frames.pop();
                continue 'frames;
            }
            if b < ly {
                for i in lx..=a {
                    ops.push(EditOp::Delete(NodeId(i - 1)));
                }
                frames.pop();
                continue 'frames;
            }
            let sheet = &sheets[fi];
            let w = (y - ly + 2) as usize;
            let at = |a: u32, b: u32| ((a + 1 - lx) as usize) * w + (b + 1 - ly) as usize;
            let cur = sheet[at(a, b)];
            if close(cur, sheet[at(a - 1, b)] + cx.del(a)) {
                ops.push(EditOp::Delete(NodeId(a - 1)));
                a -= 1;
                continue;
            }
            if close(cur, sheet[at(a, b - 1)] + cx.ins(b)) {
                ops.push(EditOp::Insert(NodeId(b - 1)));
                b -= 1;
                continue;
            }
            let la = cx.f_lml[a as usize];
            let lb = cx.g_lml[b as usize];
            if la == lx && lb == ly {
                debug_assert!(close(cur, sheet[at(a - 1, b - 1)] + cx.ren(a, b)));
                ops.push(EditOp::Map(NodeId(a - 1), NodeId(b - 1)));
                a -= 1;
                b -= 1;
                continue;
            }
            debug_assert!(close(cur, sheet[at(la - 1, lb - 1)] + cx.td_at(a, b)));
            // Cannot be the frame's own root: there la == lx && lb == ly.
            debug_assert!(!(a == x && b == y), "subtree match at the DP origin");
            // Suspend this frame at its resume position, descend into the
            // matched subtree pair.
            frames[fi].a = la - 1;
            frames[fi].b = lb - 1;
            cells += push_frame(cx, sheets, frames, a, b);
            continue 'frames;
        }
    }
    cells
}

/// Computes an optimal edit mapping, drawing **all** scratch — the
/// Zhang–Shasha keyroot DP, the backtrace's forest-DP sheets, and the
/// frame stack — from `ws`. A warm call (same or smaller pair through the
/// same workspace) allocates only the returned script's ops vector; this
/// is the serving layer's `diff` hot path. Results are identical to
/// [`edit_mapping`].
pub fn edit_mapping_in<L, C: CostModel<L>>(
    f: &Tree<L>,
    g: &Tree<L>,
    cm: &C,
    ws: &mut Workspace,
) -> EditMapping {
    let (distance, dp_cells) = zhang_shasha_in(f, g, cm, false, ws);
    let mut ops = Vec::with_capacity(f.len() + g.len());
    // Disjoint field borrows: the DP products `zhang_shasha_in` left in
    // the workspace are read-only inputs; the sheets and frames are the
    // only mutable scratch.
    let cx = TraceCtx {
        f,
        g,
        cm,
        td: &ws.d,
        f_lml: &ws.a_lml,
        g_lml: &ws.b_lml,
        f_del: &ws.a_del,
        g_ins: &ws.b_ins,
        ng: g.len() as u32,
    };
    let trace_cells = backtrace(&cx, &mut ws.trace_sheets, &mut ws.trace_frames, &mut ops);
    ops.reverse(); // backtrace emits from the right; present left-to-right
    ws.note_run(dp_cells + trace_cells);
    EditMapping {
        ops,
        cost: distance,
    }
}

/// Computes an optimal edit mapping (and its cost, the tree edit distance).
///
/// Runs Zhang–Shasha once for the subtree distances, then backtraces. For
/// integer-valued cost models (including [`crate::UnitCost`]) the result is
/// exact; for general `f64` costs the backtrace uses a small tolerance.
///
/// This is a thin wrapper over [`edit_mapping_in`] with a throwaway
/// [`Workspace`]; callers extracting many mappings should hold a
/// workspace and call the `_in` variant.
///
/// ```
/// use rted_core::mapping::{edit_mapping, EditOp};
/// use rted_core::UnitCost;
/// use rted_tree::parse_bracket;
///
/// let f = parse_bracket("{a{b}{c}}").unwrap();
/// let g = parse_bracket("{a{c}}").unwrap();
/// let m = edit_mapping(&f, &g, &UnitCost);
/// assert_eq!(m.cost, 1.0);
/// assert_eq!(m.pairs().count(), 2); // a→a, c→c
/// ```
pub fn edit_mapping<L, C: CostModel<L>>(f: &Tree<L>, g: &Tree<L>, cm: &C) -> EditMapping {
    edit_mapping_in(f, g, cm, &mut Workspace::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{PerLabelCost, UnitCost};
    use rted_tree::parse_bracket;

    fn mapping(a: &str, b: &str) -> (EditMapping, Tree<String>, Tree<String>) {
        let f = parse_bracket(a).unwrap();
        let g = parse_bracket(b).unwrap();
        let m = edit_mapping(&f, &g, &UnitCost);
        (m, f, g)
    }

    #[test]
    fn identity_mapping() {
        let (m, f, g) = mapping("{a{b}{c{d}}}", "{a{b}{c{d}}}");
        assert_eq!(m.cost, 0.0);
        assert_eq!(m.pairs().count(), 4);
        m.validate(&f, &g).unwrap();
        assert_eq!(m.cost_under(&f, &g, &UnitCost), 0.0);
    }

    #[test]
    fn single_delete() {
        let (m, f, g) = mapping("{a{b}{c}}", "{a{c}}");
        assert_eq!(m.cost, 1.0);
        m.validate(&f, &g).unwrap();
        assert_eq!(m.deletions().count(), 1);
        assert_eq!(m.insertions().count(), 0);
        // The deleted node is b (postorder id 0).
        assert_eq!(m.deletions().next(), Some(NodeId(0)));
    }

    #[test]
    fn rename_detected() {
        let (m, f, g) = mapping("{a{b}{c}}", "{a{b}{x}}");
        assert_eq!(m.cost, 1.0);
        m.validate(&f, &g).unwrap();
        // c (id 1) maps to x (id 1) as a rename.
        assert!(m.pairs().any(|(v, w)| v == NodeId(1) && w == NodeId(1)));
    }

    #[test]
    fn inner_delete_promotes_children() {
        let (m, f, g) = mapping("{a{b{c}{d}}}", "{a{c}{d}}");
        assert_eq!(m.cost, 1.0);
        m.validate(&f, &g).unwrap();
        // b deleted; c and d mapped.
        assert_eq!(m.pairs().count(), 3);
    }

    #[test]
    fn script_cost_matches_distance_on_random_trees() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            // Random trees via random attachment in postorder-safe form.
            let n1 = rng.random_range(1..28usize);
            let n2 = rng.random_range(1..28usize);
            let mk = |n: usize, rng: &mut StdRng| {
                let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
                for i in 1..n {
                    let p = rng.random_range(0..i) as u32;
                    children[p as usize].push(i as u32);
                }
                let mut post_of = vec![u32::MAX; n];
                let mut order = Vec::new();
                let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
                while let Some(&mut (v, ref mut i)) = stack.last_mut() {
                    if *i < children[v as usize].len() {
                        let c = children[v as usize][*i];
                        *i += 1;
                        stack.push((c, 0));
                    } else {
                        post_of[v as usize] = order.len() as u32;
                        order.push(v);
                        stack.pop();
                    }
                }
                let labels: Vec<u32> = (0..n).map(|_| rng.random_range(0..4u32)).collect();
                let pc: Vec<Vec<u32>> = order
                    .iter()
                    .map(|&v| {
                        children[v as usize]
                            .iter()
                            .map(|&c| post_of[c as usize])
                            .collect()
                    })
                    .collect();
                Tree::from_postorder(labels, pc)
            };
            let f = mk(n1, &mut rng);
            let g = mk(n2, &mut rng);
            let m = edit_mapping(&f, &g, &UnitCost);
            let want = crate::zs::zs_distance(&f, &g, &UnitCost);
            assert_eq!(m.cost, want, "seed {seed}");
            assert_eq!(m.cost_under(&f, &g, &UnitCost), want, "seed {seed}");
            m.validate(&f, &g)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn weighted_model_script() {
        let f = parse_bracket("{a{b}}").unwrap();
        let g = parse_bracket("{a{x}}").unwrap();
        // Rename cheap: map b→x.
        let cheap = PerLabelCost::new(1.0, 1.0, 0.25);
        let m = edit_mapping(&f, &g, &cheap);
        assert_eq!(m.cost, 0.25);
        assert_eq!(m.pairs().count(), 2);
        // Rename expensive: delete + insert instead.
        let dear = PerLabelCost::new(1.0, 1.0, 5.0);
        let m = edit_mapping(&f, &g, &dear);
        assert_eq!(m.cost, 2.0);
        assert_eq!(m.pairs().count(), 1); // only the roots map
        m.validate(&f, &g).unwrap();
    }

    #[test]
    fn every_node_accounted_once() {
        let (m, f, g) = mapping("{a{b{c}{d}}{e}}", "{x{y}{z{q{r}}}}");
        let total = m.ops.len();
        let mapped = m.pairs().count();
        assert_eq!(total, f.len() + g.len() - mapped);
        m.validate(&f, &g).unwrap();
    }

    #[test]
    fn reused_workspace_matches_fresh_per_pair() {
        // One workspace threaded through pairs of very different sizes
        // and both cost models must reproduce the self-contained result
        // exactly — ops and cost.
        let pairs = [
            ("{a{b}{c{d}}}", "{a{b{d}}{c}}"),
            ("{a}", "{x{y}{z{w{q}}}}"),
            ("{a{b{c}{d}}{e}}", "{x{y}{z{q{r}}}}"),
            ("{r{a{x}}{b}}", "{r{a}{b{x}}}"),
        ];
        let asym = PerLabelCost::new(1.5, 2.0, 0.75);
        let mut ws = Workspace::new();
        for (a, b) in pairs {
            let f: Tree<String> = parse_bracket(a).unwrap();
            let g: Tree<String> = parse_bracket(b).unwrap();
            let fresh = edit_mapping(&f, &g, &UnitCost);
            let reused = edit_mapping_in(&f, &g, &UnitCost, &mut ws);
            assert_eq!(reused, fresh, "{a} vs {b}");
            let fresh = edit_mapping(&f, &g, &asym);
            let reused = edit_mapping_in(&f, &g, &asym, &mut ws);
            assert_eq!(reused, fresh, "{a} vs {b} (asym)");
            reused.validate(&f, &g).unwrap();
            assert!(close(reused.cost_under(&f, &g, &asym), reused.cost));
        }
    }

    #[test]
    fn deep_nesting_reuses_pooled_sheets() {
        // A pair whose backtrace descends through nested subtree matches
        // (several live frames at once), run twice through one workspace:
        // the sheet pool must hold one sheet per live depth and the
        // second run must agree with the first.
        let f: Tree<String> =
            parse_bracket("{r{s{a{b}{c}}{d}}{t{a{b}{c}}{e}}{u{a{b}{c}}}}").unwrap();
        let g: Tree<String> =
            parse_bracket("{r{s{a{b}{c}}}{t{a{b}{x}}{e}}{v{a{b}{c}}{q}}}").unwrap();
        let mut ws = Workspace::new();
        let first = edit_mapping_in(&f, &g, &UnitCost, &mut ws);
        first.validate(&f, &g).unwrap();
        assert_eq!(first.cost, crate::zs::zs_distance(&f, &g, &UnitCost));
        let second = edit_mapping_in(&f, &g, &UnitCost, &mut ws);
        assert_eq!(second, first);
    }

    #[test]
    fn script_resolves_labels_and_counts() {
        let (m, f, g) = mapping("{a{b}{c}}", "{a{b}{x}{d}}");
        let s = m.script(&f, &g);
        assert_eq!(s.cost, m.cost);
        assert_eq!(s.deletes + s.inserts + s.renames + s.keeps, s.ops.len());
        assert_eq!(s.ops.len(), f.len() + g.len() - m.pairs().count());
        // b and a survive; c→x renames or c deletes + x inserts — either
        // way d is inserted and the counts foot with the cost.
        assert!(s
            .ops
            .iter()
            .any(|op| matches!(op, ScriptOp::Insert { label, .. } if label == "d")));
        assert_eq!(
            s.deletes as f64 + s.inserts as f64 + s.renames as f64,
            s.cost
        );
        assert_eq!(s.changes(), s.deletes + s.inserts + s.renames);
        // Text rendering mentions every op on its own line.
        let text = s.render_text();
        assert_eq!(text.lines().count(), s.ops.len());
        assert!(text.contains("keep   a"));
        assert!(text.contains("insert d"));
        assert_eq!(
            s.summary(),
            format!(
                "{} delete, {} insert, {} rename, {} keep",
                s.deletes, s.inserts, s.renames, s.keeps
            )
        );
    }

    #[test]
    fn identity_script_is_all_keeps() {
        let (m, f, g) = mapping("{a{b}{c{d}}}", "{a{b}{c{d}}}");
        let s = m.script(&f, &g);
        assert_eq!(s.keeps, 4);
        assert_eq!(s.changes(), 0);
        assert_eq!(s.render_text(), "keep   b\nkeep   d\nkeep   c\nkeep   a\n");
    }
}
