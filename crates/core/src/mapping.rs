//! Optimal edit mapping recovery.
//!
//! The distance algorithms report only the cost; applications (XML diff,
//! change detection — the paper's §1 motivation) need the *edit script*:
//! which nodes were deleted, inserted, or mapped (kept/renamed). This
//! module recovers an optimal mapping by re-running the Zhang–Shasha
//! forest DP along the optimal trace: the full keyroot DP gives all
//! subtree distances, then a backtrace walks each forest DP from the top
//! cell, recursing into matched subtree pairs.
//!
//! A valid edit mapping `M` is a set of node pairs that is one-to-one and
//! preserves both postorder (left-to-right) order and the ancestor
//! relation; its cost is `Σ cd(v)` over unmapped `v ∈ F` + `Σ ci(w)` over
//! unmapped `w ∈ G` + `Σ cr(v, w)` over pairs — the tree edit distance is
//! the minimum over all valid mappings (Tai 1979).

use crate::cost::{CostModel, CostTables};
use crate::view::SubtreeView;
use crate::zs::zhang_shasha;
use rted_tree::{NodeId, Tree};

/// One edit operation of a script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditOp {
    /// Delete node `v` of the first tree.
    Delete(NodeId),
    /// Insert node `w` of the second tree.
    Insert(NodeId),
    /// Map node `v` to node `w` (a rename when labels differ, otherwise a
    /// kept node).
    Map(NodeId, NodeId),
}

/// An optimal edit mapping between two trees.
#[derive(Debug, Clone, PartialEq)]
pub struct EditMapping {
    /// All operations; every node of both trees appears exactly once.
    pub ops: Vec<EditOp>,
    /// The mapping's cost (equals the tree edit distance).
    pub cost: f64,
}

impl EditMapping {
    /// The mapped pairs only.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.ops.iter().filter_map(|op| match op {
            EditOp::Map(v, w) => Some((*v, *w)),
            _ => None,
        })
    }

    /// Deleted nodes of the first tree.
    pub fn deletions(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ops.iter().filter_map(|op| match op {
            EditOp::Delete(v) => Some(*v),
            _ => None,
        })
    }

    /// Inserted nodes of the second tree.
    pub fn insertions(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ops.iter().filter_map(|op| match op {
            EditOp::Insert(w) => Some(*w),
            _ => None,
        })
    }

    /// Recomputes the cost of this mapping under `cm`.
    pub fn cost_under<L, C: CostModel<L>>(&self, f: &Tree<L>, g: &Tree<L>, cm: &C) -> f64 {
        self.ops
            .iter()
            .map(|op| match op {
                EditOp::Delete(v) => cm.delete(f.label(*v)),
                EditOp::Insert(w) => cm.insert(g.label(*w)),
                EditOp::Map(v, w) => cm.rename(f.label(*v), g.label(*w)),
            })
            .sum()
    }

    /// Checks the Tai mapping conditions: one-to-one, order-preserving,
    /// ancestor-preserving, and that every node appears exactly once.
    /// O(k²) — intended for tests and debugging.
    pub fn validate<L>(&self, f: &Tree<L>, g: &Tree<L>) -> Result<(), String> {
        let mut seen_f = vec![false; f.len()];
        let mut seen_g = vec![false; g.len()];
        let mark = |arr: &mut Vec<bool>, i: usize, side: &str| {
            if arr[i] {
                return Err(format!("{side} node {i} appears twice"));
            }
            arr[i] = true;
            Ok(())
        };
        for op in &self.ops {
            match op {
                EditOp::Delete(v) => mark(&mut seen_f, v.idx(), "F")?,
                EditOp::Insert(w) => mark(&mut seen_g, w.idx(), "G")?,
                EditOp::Map(v, w) => {
                    mark(&mut seen_f, v.idx(), "F")?;
                    mark(&mut seen_g, w.idx(), "G")?;
                }
            }
        }
        if !seen_f.iter().all(|&b| b) || !seen_g.iter().all(|&b| b) {
            return Err("some node missing from the script".into());
        }
        let pairs: Vec<(NodeId, NodeId)> = self.pairs().collect();
        for (i, &(v1, w1)) in pairs.iter().enumerate() {
            for &(v2, w2) in &pairs[i + 1..] {
                // Postorder order preservation.
                if (v1 < v2) != (w1 < w2) {
                    return Err(format!("order violated: ({v1},{w1}) vs ({v2},{w2})"));
                }
                // Ancestor preservation.
                let f_anc = f.in_subtree(v2, v1) || f.in_subtree(v1, v2);
                let g_anc = g.in_subtree(w2, w1) || g.in_subtree(w1, w2);
                let f_v1_anc_v2 = f.in_subtree(v2, v1);
                let g_w1_anc_w2 = g.in_subtree(w2, w1);
                if f_anc != g_anc || f_v1_anc_v2 != g_w1_anc_w2 {
                    return Err(format!("ancestry violated: ({v1},{w1}) vs ({v2},{w2})"));
                }
            }
        }
        Ok(())
    }
}

/// Float comparison for backtrace decisions: exact for integer-valued cost
/// models, tolerant for general `f64` costs.
#[inline]
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

struct Tracer<'a, L, C> {
    f: &'a Tree<L>,
    g: &'a Tree<L>,
    cm: &'a C,
    ftab: CostTables,
    gtab: CostTables,
    /// Zhang–Shasha subtree-distance matrix, local ranks (= postorder+1).
    td: Vec<f64>,
    ng: u32,
    ops: Vec<EditOp>,
    f_lml: Vec<u32>,
    g_lml: Vec<u32>,
}

impl<L, C: CostModel<L>> Tracer<'_, L, C> {
    #[inline]
    fn td_at(&self, x: u32, y: u32) -> f64 {
        self.td[(x * (self.ng + 1) + y) as usize]
    }

    #[inline]
    fn del(&self, x: u32) -> f64 {
        self.ftab.del[x as usize - 1]
    }

    #[inline]
    fn ins(&self, y: u32) -> f64 {
        self.gtab.ins[y as usize - 1]
    }

    #[inline]
    fn ren(&self, x: u32, y: u32) -> f64 {
        self.cm
            .rename(self.f.label(NodeId(x - 1)), self.g.label(NodeId(y - 1)))
    }

    /// Emits deletes for the whole subtree forest `[lx..=x]`.
    fn delete_range(&mut self, lx: u32, x: u32) {
        for i in lx..=x {
            self.ops.push(EditOp::Delete(NodeId(i - 1)));
        }
    }

    fn insert_range(&mut self, ly: u32, y: u32) {
        for j in ly..=y {
            self.ops.push(EditOp::Insert(NodeId(j - 1)));
        }
    }

    /// Re-runs the forest DP for the subtree pair `(x, y)` and backtraces
    /// it, emitting operations for every node of both subtrees.
    fn trace_tree(&mut self, x: u32, y: u32) {
        let lx = self.f_lml[x as usize];
        let ly = self.g_lml[y as usize];
        let w = (y - ly + 2) as usize; // columns ly-1..=y
        let h = (x - lx + 2) as usize; // rows lx-1..=x
        let at = |a: u32, b: u32| ((a + 1 - lx) as usize) * w + (b + 1 - ly) as usize;
        let mut fd = vec![0.0f64; h * w];
        for a in lx..=x {
            fd[at(a, ly - 1)] = fd[at(a - 1, ly - 1)] + self.del(a);
        }
        for b in ly..=y {
            fd[at(lx - 1, b)] = fd[at(lx - 1, b - 1)] + self.ins(b);
        }
        for a in lx..=x {
            let la = self.f_lml[a as usize];
            for b in ly..=y {
                let lb = self.g_lml[b as usize];
                let del = fd[at(a - 1, b)] + self.del(a);
                let ins = fd[at(a, b - 1)] + self.ins(b);
                let v = if la == lx && lb == ly {
                    del.min(ins).min(fd[at(a - 1, b - 1)] + self.ren(a, b))
                } else {
                    del.min(ins).min(fd[at(la - 1, lb - 1)] + self.td_at(a, b))
                };
                fd[at(a, b)] = v;
            }
        }
        debug_assert!(close(fd[at(x, y)], self.td_at(x, y)), "trace DP mismatch");

        // Backtrace from (x, y) to (lx-1, ly-1).
        let (mut a, mut b) = (x, y);
        while a >= lx || b >= ly {
            if a < lx {
                self.insert_range(ly, b);
                break;
            }
            if b < ly {
                self.delete_range(lx, a);
                break;
            }
            let cur = fd[at(a, b)];
            if close(cur, fd[at(a - 1, b)] + self.del(a)) {
                self.ops.push(EditOp::Delete(NodeId(a - 1)));
                a -= 1;
                continue;
            }
            if close(cur, fd[at(a, b - 1)] + self.ins(b)) {
                self.ops.push(EditOp::Insert(NodeId(b - 1)));
                b -= 1;
                continue;
            }
            let la = self.f_lml[a as usize];
            let lb = self.g_lml[b as usize];
            if la == lx && lb == ly {
                debug_assert!(close(cur, fd[at(a - 1, b - 1)] + self.ren(a, b)));
                self.ops.push(EditOp::Map(NodeId(a - 1), NodeId(b - 1)));
                a -= 1;
                b -= 1;
            } else {
                debug_assert!(close(cur, fd[at(la - 1, lb - 1)] + self.td_at(a, b)));
                if a == x && b == y {
                    // Cannot happen: (x, y) has la == lx && lb == ly.
                    unreachable!("subtree-match transition at the DP origin");
                }
                self.trace_tree(a, b);
                a = la - 1;
                b = lb - 1;
            }
        }
    }
}

/// Computes an optimal edit mapping (and its cost, the tree edit distance).
///
/// Runs Zhang–Shasha once for the subtree distances, then backtraces. For
/// integer-valued cost models (including [`crate::UnitCost`]) the result is
/// exact; for general `f64` costs the backtrace uses a small tolerance.
///
/// ```
/// use rted_core::mapping::{edit_mapping, EditOp};
/// use rted_core::UnitCost;
/// use rted_tree::parse_bracket;
///
/// let f = parse_bracket("{a{b}{c}}").unwrap();
/// let g = parse_bracket("{a{c}}").unwrap();
/// let m = edit_mapping(&f, &g, &UnitCost);
/// assert_eq!(m.cost, 1.0);
/// assert_eq!(m.pairs().count(), 2); // a→a, c→c
/// ```
pub fn edit_mapping<L, C: CostModel<L>>(f: &Tree<L>, g: &Tree<L>, cm: &C) -> EditMapping {
    let zs = zhang_shasha(f, g, cm, false);
    let fv = SubtreeView::new(f, f.root(), false);
    let gv = SubtreeView::new(g, g.root(), false);
    let f_lml: Vec<u32> = std::iter::once(0)
        .chain((1..=fv.n).map(|r| fv.lml(r)))
        .collect();
    let g_lml: Vec<u32> = std::iter::once(0)
        .chain((1..=gv.n).map(|r| gv.lml(r)))
        .collect();
    let mut tracer = Tracer {
        f,
        g,
        cm,
        ftab: CostTables::new(f, cm),
        gtab: CostTables::new(g, cm),
        td: zs.td,
        ng: g.len() as u32,
        ops: Vec::with_capacity(f.len() + g.len()),
        f_lml,
        g_lml,
    };
    tracer.trace_tree(f.len() as u32, g.len() as u32);
    let mut ops = tracer.ops;
    ops.reverse(); // backtrace emits from the right; present left-to-right
    EditMapping {
        ops,
        cost: zs.distance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{PerLabelCost, UnitCost};
    use rted_tree::parse_bracket;

    fn mapping(a: &str, b: &str) -> (EditMapping, Tree<String>, Tree<String>) {
        let f = parse_bracket(a).unwrap();
        let g = parse_bracket(b).unwrap();
        let m = edit_mapping(&f, &g, &UnitCost);
        (m, f, g)
    }

    #[test]
    fn identity_mapping() {
        let (m, f, g) = mapping("{a{b}{c{d}}}", "{a{b}{c{d}}}");
        assert_eq!(m.cost, 0.0);
        assert_eq!(m.pairs().count(), 4);
        m.validate(&f, &g).unwrap();
        assert_eq!(m.cost_under(&f, &g, &UnitCost), 0.0);
    }

    #[test]
    fn single_delete() {
        let (m, f, g) = mapping("{a{b}{c}}", "{a{c}}");
        assert_eq!(m.cost, 1.0);
        m.validate(&f, &g).unwrap();
        assert_eq!(m.deletions().count(), 1);
        assert_eq!(m.insertions().count(), 0);
        // The deleted node is b (postorder id 0).
        assert_eq!(m.deletions().next(), Some(NodeId(0)));
    }

    #[test]
    fn rename_detected() {
        let (m, f, g) = mapping("{a{b}{c}}", "{a{b}{x}}");
        assert_eq!(m.cost, 1.0);
        m.validate(&f, &g).unwrap();
        // c (id 1) maps to x (id 1) as a rename.
        assert!(m.pairs().any(|(v, w)| v == NodeId(1) && w == NodeId(1)));
    }

    #[test]
    fn inner_delete_promotes_children() {
        let (m, f, g) = mapping("{a{b{c}{d}}}", "{a{c}{d}}");
        assert_eq!(m.cost, 1.0);
        m.validate(&f, &g).unwrap();
        // b deleted; c and d mapped.
        assert_eq!(m.pairs().count(), 3);
    }

    #[test]
    fn script_cost_matches_distance_on_random_trees() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            // Random trees via random attachment in postorder-safe form.
            let n1 = rng.random_range(1..28usize);
            let n2 = rng.random_range(1..28usize);
            let mk = |n: usize, rng: &mut StdRng| {
                let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
                for i in 1..n {
                    let p = rng.random_range(0..i) as u32;
                    children[p as usize].push(i as u32);
                }
                let mut post_of = vec![u32::MAX; n];
                let mut order = Vec::new();
                let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
                while let Some(&mut (v, ref mut i)) = stack.last_mut() {
                    if *i < children[v as usize].len() {
                        let c = children[v as usize][*i];
                        *i += 1;
                        stack.push((c, 0));
                    } else {
                        post_of[v as usize] = order.len() as u32;
                        order.push(v);
                        stack.pop();
                    }
                }
                let labels: Vec<u32> = (0..n).map(|_| rng.random_range(0..4u32)).collect();
                let pc: Vec<Vec<u32>> = order
                    .iter()
                    .map(|&v| {
                        children[v as usize]
                            .iter()
                            .map(|&c| post_of[c as usize])
                            .collect()
                    })
                    .collect();
                Tree::from_postorder(labels, pc)
            };
            let f = mk(n1, &mut rng);
            let g = mk(n2, &mut rng);
            let m = edit_mapping(&f, &g, &UnitCost);
            let want = crate::zs::zs_distance(&f, &g, &UnitCost);
            assert_eq!(m.cost, want, "seed {seed}");
            assert_eq!(m.cost_under(&f, &g, &UnitCost), want, "seed {seed}");
            m.validate(&f, &g)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn weighted_model_script() {
        let f = parse_bracket("{a{b}}").unwrap();
        let g = parse_bracket("{a{x}}").unwrap();
        // Rename cheap: map b→x.
        let cheap = PerLabelCost::new(1.0, 1.0, 0.25);
        let m = edit_mapping(&f, &g, &cheap);
        assert_eq!(m.cost, 0.25);
        assert_eq!(m.pairs().count(), 2);
        // Rename expensive: delete + insert instead.
        let dear = PerLabelCost::new(1.0, 1.0, 5.0);
        let m = edit_mapping(&f, &g, &dear);
        assert_eq!(m.cost, 2.0);
        assert_eq!(m.pairs().count(), 1); // only the roots map
        m.validate(&f, &g).unwrap();
    }

    #[test]
    fn every_node_accounted_once() {
        let (m, f, g) = mapping("{a{b{c}{d}}{e}}", "{x{y}{z{q{r}}}}");
        let total = m.ops.len();
        let mapped = m.pairs().count();
        assert_eq!(total, f.len() + g.len() - mapped);
        m.validate(&f, &g).unwrap();
    }
}
