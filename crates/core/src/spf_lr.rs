//! Single-path functions `∆L` and `∆R` (§4.3): the Zhang–Shasha keyroot DP
//! adapted to a single root-leaf path.
//!
//! `∆L(F, G, γL(F), D)` computes δ(F_v, G_w) for every node `v` on the
//! **left** path of `F` and every `w` in `G`, given that `D` already holds
//! the distances for all subtrees of `F` hanging off the path (GTED
//! recursed on them first). It computes exactly
//! `|F| × |F(G, Γ_L(G))|` relevant subproblems (Lemma 4): one keyroot DP of
//! size `|F| × |G_j|` per left-keyroot `j` of `G`. `∆R` is the same code on
//! the mirrored orientation.

use crate::cost::CostModel;
use crate::gted::Executor;
use crate::view::SubtreeView;
use rted_tree::NodeId;

/// Runs `∆L` (`right == false`) or `∆R` (`right == true`) for the A-side
/// subtree rooted at `a_root` against the B-side subtree at `b_root`.
///
/// `swapped` selects the orientation of the executor's cost/distance
/// accessors (true when the A side is the original right-hand tree).
pub(crate) fn run<L, C: CostModel<L>>(
    exec: &mut Executor<'_, L, C>,
    a_root: NodeId,
    b_root: NodeId,
    swapped: bool,
    right: bool,
) {
    let ta = exec.tree_a(swapped);
    let tb = exec.tree_b(swapped);
    let va = SubtreeView::new(ta, a_root, right);
    let vb = SubtreeView::new(tb, b_root, right);
    let na = va.n;
    let nb = vb.n;
    let stride = (nb + 1) as usize;

    // Per-rank data. Rank 0 entries are padding.
    let a_lml: Vec<u32> = std::iter::once(0)
        .chain((1..=na).map(|r| va.lml(r)))
        .collect();
    let b_lml: Vec<u32> = std::iter::once(0)
        .chain((1..=nb).map(|r| vb.lml(r)))
        .collect();
    let a_node: Vec<NodeId> = std::iter::once(NodeId(0))
        .chain((1..=na).map(|r| va.node(r)))
        .collect();
    let b_node: Vec<NodeId> = std::iter::once(NodeId(0))
        .chain((1..=nb).map(|r| vb.node(r)))
        .collect();
    let a_del: Vec<f64> = std::iter::once(0.0)
        .chain((1..=na).map(|r| exec.del_a(a_node[r as usize], swapped)))
        .collect();
    let b_ins: Vec<f64> = std::iter::once(0.0)
        .chain((1..=nb).map(|r| exec.ins_b(b_node[r as usize], swapped)))
        .collect();

    let mut fd = vec![0.0f64; (na as usize + 1) * stride];
    let at = |x: u32, y: u32| (x as usize) * stride + y as usize;

    // The A side always spans the whole subtree (its "keyroot" is the root,
    // whose view-leftmost leaf is rank 1). Spine nodes are the ranks whose
    // lml is 1 — exactly the nodes on the left (resp. right) path.
    for j in vb.keyroots() {
        let lj = b_lml[j as usize];
        exec.stats.subproblems += na as u64 * (j - lj + 1) as u64;
        fd[at(0, lj - 1)] = 0.0;
        for x in 1..=na {
            fd[at(x, lj - 1)] = fd[at(x - 1, lj - 1)] + a_del[x as usize];
        }
        for y in lj..=j {
            fd[at(0, y)] = fd[at(0, y - 1)] + b_ins[y as usize];
        }
        for x in 1..=na {
            let lx = a_lml[x as usize];
            for y in lj..=j {
                let ly = b_lml[y as usize];
                let del = fd[at(x - 1, y)] + a_del[x as usize];
                let ins = fd[at(x, y - 1)] + b_ins[y as usize];
                let v = if lx == 1 && ly == lj {
                    // Both prefixes are complete subtrees rooted at path
                    // nodes: rename case; this is a new tree-tree distance.
                    let ren = fd[at(x - 1, y - 1)]
                        + exec.ren_ab(a_node[x as usize], b_node[y as usize], swapped);
                    let best = del.min(ins).min(ren);
                    exec.d_set(a_node[x as usize], b_node[y as usize], swapped, best);
                    best
                } else {
                    // Match complete subtrees at x and y; their tree-tree
                    // distance is in D (hanging subtree of A × anything, or
                    // A-path node × earlier keyroot region of B).
                    let m = fd[at(lx - 1, ly - 1)]
                        + exec.d_get(a_node[x as usize], b_node[y as usize], swapped);
                    del.min(ins).min(m)
                };
                fd[at(x, y)] = v;
            }
        }
    }
}
