//! Single-path functions `∆L` and `∆R` (§4.3): the Zhang–Shasha keyroot DP
//! adapted to a single root-leaf path.
//!
//! `∆L(F, G, γL(F), D)` computes δ(F_v, G_w) for every node `v` on the
//! **left** path of `F` and every `w` in `G`, given that `D` already holds
//! the distances for all subtrees of `F` hanging off the path (GTED
//! recursed on them first). It computes exactly
//! `|F| × |F(G, Γ_L(G))|` relevant subproblems (Lemma 4): one keyroot DP of
//! size `|F| × |G_j|` per left-keyroot `j` of `G`. `∆R` is the same code on
//! the mirrored orientation.

use crate::cost::CostModel;
use crate::gted::Executor;
use crate::view::SubtreeView;
use rted_tree::NodeId;

/// Runs `∆L` (`right == false`) or `∆R` (`right == true`) for the A-side
/// subtree rooted at `a_root` against the B-side subtree at `b_root`.
///
/// `swapped` selects the orientation of the executor's cost/distance
/// accessors (true when the A side is the original right-hand tree).
pub(crate) fn run<L, C: CostModel<L>>(
    exec: &mut Executor<'_, L, C>,
    a_root: NodeId,
    b_root: NodeId,
    swapped: bool,
    right: bool,
) {
    let ta = exec.tree_a(swapped);
    let tb = exec.tree_b(swapped);
    let va = SubtreeView::new(ta, a_root, right);
    let vb = SubtreeView::new(tb, b_root, right);
    let na = va.n;
    let nb = vb.n;
    let stride = (nb + 1) as usize;

    // Scratch comes from the workspace; every buffer is length-reset and
    // handed back below, so repeat executions allocate nothing.
    let (
        mut a_lml,
        mut b_lml,
        mut a_node,
        mut b_node,
        mut a_del,
        mut b_ins,
        mut fd,
        mut cand,
        mut krb,
    ) = {
        let ws = exec.scratch();
        (
            std::mem::take(&mut ws.a_lml),
            std::mem::take(&mut ws.b_lml),
            std::mem::take(&mut ws.a_node),
            std::mem::take(&mut ws.b_node),
            std::mem::take(&mut ws.a_del),
            std::mem::take(&mut ws.b_ins),
            std::mem::take(&mut ws.fd),
            std::mem::take(&mut ws.cand),
            std::mem::take(&mut ws.keyroots_b),
        )
    };

    // Per-rank data. Rank 0 entries are padding.
    a_lml.clear();
    a_lml.extend(std::iter::once(0).chain((1..=na).map(|r| va.lml(r))));
    b_lml.clear();
    b_lml.extend(std::iter::once(0).chain((1..=nb).map(|r| vb.lml(r))));
    a_node.clear();
    a_node.extend(std::iter::once(NodeId(0)).chain((1..=na).map(|r| va.node(r))));
    b_node.clear();
    b_node.extend(std::iter::once(NodeId(0)).chain((1..=nb).map(|r| vb.node(r))));
    a_del.clear();
    a_del.push(0.0);
    for r in 1..=na {
        a_del.push(exec.del_a(a_node[r as usize], swapped));
    }
    b_ins.clear();
    b_ins.push(0.0);
    for r in 1..=nb {
        b_ins.push(exec.ins_b(b_node[r as usize], swapped));
    }

    fd.clear();
    fd.resize((na as usize + 1) * stride, 0.0);
    cand.clear();
    cand.resize(stride, 0.0);
    let at = |x: u32, y: u32| (x as usize) * stride + y as usize;

    // The A side always spans the whole subtree (its "keyroot" is the root,
    // whose view-leftmost leaf is rank 1). Spine nodes are the ranks whose
    // lml is 1 — exactly the nodes on the left (resp. right) path.
    vb.keyroots_into(&mut krb);
    for &j in &krb {
        let lj = b_lml[j as usize];
        exec.stats.subproblems += na as u64 * (j - lj + 1) as u64;
        fd[at(0, lj - 1)] = 0.0;
        for x in 1..=na {
            fd[at(x, lj - 1)] = fd[at(x - 1, lj - 1)] + a_del[x as usize];
        }
        for y in lj..=j {
            fd[at(0, y)] = fd[at(0, y - 1)] + b_ins[y as usize];
        }
        for x in 1..=na {
            let lx = a_lml[x as usize];
            let dx = a_del[x as usize];
            let xi = (x as usize) * stride;
            // Two-pass row, as in the Zhang–Shasha kernel: pass 1 streams
            // the delete/rename/jump candidates (all reads from rows `< x`
            // or from D) into `cand`; pass 2 runs the sequential insert
            // chain. The min is associative, so values are bit-identical
            // to the fused loop's.
            let (before, cur) = fd.split_at_mut(xi);
            let cur = &mut cur[..stride];
            let prev = &before[xi - stride..];
            if lx == 1 {
                // Spine row: rename where the B-prefix is a complete
                // subtree, jump elsewhere.
                for y in lj..=j {
                    let ly = b_lml[y as usize];
                    let t = if ly == lj {
                        prev[y as usize - 1]
                            + exec.ren_ab(a_node[x as usize], b_node[y as usize], swapped)
                    } else {
                        before[(lx as usize - 1) * stride + ly as usize - 1]
                            + exec.d_get(a_node[x as usize], b_node[y as usize], swapped)
                    };
                    cand[y as usize] = (prev[y as usize] + dx).min(t);
                }
            } else {
                // Match complete subtrees at x and y; their tree-tree
                // distance is in D (hanging subtree of A × anything, or
                // A-path node × earlier keyroot region of B).
                for y in lj..=j {
                    let ly = b_lml[y as usize];
                    let m = before[(lx as usize - 1) * stride + ly as usize - 1]
                        + exec.d_get(a_node[x as usize], b_node[y as usize], swapped);
                    cand[y as usize] = (prev[y as usize] + dx).min(m);
                }
            }
            let mut run = cur[lj as usize - 1];
            for y in lj..=j {
                let v = cand[y as usize].min(run + b_ins[y as usize]);
                cur[y as usize] = v;
                run = v;
            }
            if lx == 1 {
                // Both prefixes were complete subtrees rooted at path
                // nodes: record the new tree-tree distances.
                for y in lj..=j {
                    if b_lml[y as usize] == lj {
                        exec.d_set(
                            a_node[x as usize],
                            b_node[y as usize],
                            swapped,
                            cur[y as usize],
                        );
                    }
                }
            }
        }
    }

    let ws = exec.scratch();
    ws.a_lml = a_lml;
    ws.b_lml = b_lml;
    ws.a_node = a_node;
    ws.b_node = b_node;
    ws.a_del = a_del;
    ws.b_ins = b_ins;
    ws.fd = fd;
    ws.cand = cand;
    ws.keyroots_b = krb;
}
