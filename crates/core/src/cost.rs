//! Edit operation cost models (§2.2 of the paper).
//!
//! The tree edit distance is parameterized by three per-node costs:
//! `cd(v)` for deleting node `v`, `ci(w)` for inserting node `w`, and
//! `cr(v, w)` for renaming `v`'s label into `w`'s. A [`CostModel`] supplies
//! these as functions of the labels. Costs must be non-negative, and for the
//! distance to be sensible `rename(a, a)` should be 0.

use rted_tree::Tree;

/// Supplies the three edit operation costs as functions of node labels.
pub trait CostModel<L> {
    /// Cost of deleting a node labeled `label`.
    fn delete(&self, label: &L) -> f64;
    /// Cost of inserting a node labeled `label`.
    fn insert(&self, label: &L) -> f64;
    /// Cost of renaming a node labeled `from` into label `to`.
    fn rename(&self, from: &L, to: &L) -> f64;
}

impl<L, C: CostModel<L> + ?Sized> CostModel<L> for &C {
    #[inline]
    fn delete(&self, label: &L) -> f64 {
        (**self).delete(label)
    }
    #[inline]
    fn insert(&self, label: &L) -> f64 {
        (**self).insert(label)
    }
    #[inline]
    fn rename(&self, from: &L, to: &L) -> f64 {
        (**self).rename(from, to)
    }
}

/// The unit cost model used throughout the paper's evaluation: every delete
/// and insert costs 1, a rename costs 1 unless the labels are equal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitCost;

impl<L: PartialEq> CostModel<L> for UnitCost {
    #[inline]
    fn delete(&self, _label: &L) -> f64 {
        1.0
    }
    #[inline]
    fn insert(&self, _label: &L) -> f64 {
        1.0
    }
    #[inline]
    fn rename(&self, from: &L, to: &L) -> f64 {
        if from == to {
            0.0
        } else {
            1.0
        }
    }
}

/// A weighted cost model with uniform per-operation weights: deletes cost
/// `del`, inserts `ins`, renames of distinct labels `ren` (equal labels are
/// free). Useful for asymmetric edit models (e.g. making structure removal
/// cheaper than insertion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerLabelCost {
    /// Cost of every delete.
    pub del: f64,
    /// Cost of every insert.
    pub ins: f64,
    /// Cost of renaming two distinct labels.
    pub ren: f64,
}

impl PerLabelCost {
    /// Creates a weighted model; all weights must be non-negative.
    pub fn new(del: f64, ins: f64, ren: f64) -> Self {
        assert!(
            del >= 0.0 && ins >= 0.0 && ren >= 0.0,
            "costs must be non-negative"
        );
        PerLabelCost { del, ins, ren }
    }
}

impl<L: PartialEq> CostModel<L> for PerLabelCost {
    #[inline]
    fn delete(&self, _label: &L) -> f64 {
        self.del
    }
    #[inline]
    fn insert(&self, _label: &L) -> f64 {
        self.ins
    }
    #[inline]
    fn rename(&self, from: &L, to: &L) -> f64 {
        if from == to {
            0.0
        } else {
            self.ren
        }
    }
}

/// A cost model defined by three closures (handy in tests and examples).
#[derive(Clone)]
pub struct FnCost<D, I, R> {
    /// Delete cost function.
    pub del: D,
    /// Insert cost function.
    pub ins: I,
    /// Rename cost function.
    pub ren: R,
}

impl<L, D, I, R> CostModel<L> for FnCost<D, I, R>
where
    D: Fn(&L) -> f64,
    I: Fn(&L) -> f64,
    R: Fn(&L, &L) -> f64,
{
    #[inline]
    fn delete(&self, label: &L) -> f64 {
        (self.del)(label)
    }
    #[inline]
    fn insert(&self, label: &L) -> f64 {
        (self.ins)(label)
    }
    #[inline]
    fn rename(&self, from: &L, to: &L) -> f64 {
        (self.ren)(from, to)
    }
}

/// Per-node cost tables for one tree under a cost model, plus subtree
/// aggregates, snapshotted once so the DP hot loops never call back into the
/// model for delete/insert costs.
#[derive(Debug, Clone, Default)]
pub(crate) struct CostTables {
    /// Delete cost per node.
    pub del: Vec<f64>,
    /// Insert cost per node.
    pub ins: Vec<f64>,
    /// Sum of delete costs over each node's subtree.
    pub sub_del: Vec<f64>,
    /// Sum of insert costs over each node's subtree.
    pub sub_ins: Vec<f64>,
}

impl CostTables {
    pub(crate) fn new<L, C: CostModel<L>>(tree: &Tree<L>, cm: &C) -> Self {
        let mut tables = CostTables::default();
        tables.rebuild(tree, cm);
        tables
    }

    /// Recomputes the tables for `tree` in place, reusing capacity (no
    /// allocation once the arrays are large enough).
    pub(crate) fn rebuild<L, C: CostModel<L>>(&mut self, tree: &Tree<L>, cm: &C) {
        let n = tree.len();
        self.del.clear();
        self.ins.clear();
        self.sub_del.clear();
        self.sub_del.resize(n, 0.0);
        self.sub_ins.clear();
        self.sub_ins.resize(n, 0.0);
        for v in tree.nodes() {
            let d = cm.delete(tree.label(v));
            let i = cm.insert(tree.label(v));
            assert!(d >= 0.0 && i >= 0.0, "edit costs must be non-negative");
            self.del.push(d);
            self.ins.push(i);
            let mut sd = d;
            let mut si = i;
            for c in tree.children(v) {
                sd += self.sub_del[c.idx()];
                si += self.sub_ins[c.idx()];
            }
            self.sub_del[v.idx()] = sd;
            self.sub_ins[v.idx()] = si;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rted_tree::parse_bracket;

    #[test]
    fn unit_cost_values() {
        let c = UnitCost;
        assert_eq!(CostModel::<&str>::delete(&c, &"a"), 1.0);
        assert_eq!(c.rename(&"a", &"a"), 0.0);
        assert_eq!(c.rename(&"a", &"b"), 1.0);
    }

    #[test]
    fn tables_aggregate_subtrees() {
        let t = parse_bracket("{a{b}{c{d}}}").unwrap();
        let tab = CostTables::new(&t, &UnitCost);
        let root = t.root();
        assert_eq!(tab.sub_del[root.idx()], 4.0);
        assert_eq!(tab.sub_ins[root.idx()], 4.0);
        // subtree c{d} has two nodes
        assert_eq!(tab.sub_del[2], 2.0);
    }

    #[test]
    fn weighted_model() {
        let c = PerLabelCost::new(2.0, 3.0, 0.5);
        assert_eq!(CostModel::<&str>::delete(&c, &"x"), 2.0);
        assert_eq!(CostModel::<&str>::insert(&c, &"x"), 3.0);
        assert_eq!(c.rename(&"x", &"y"), 0.5);
        assert_eq!(c.rename(&"x", &"x"), 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_costs_rejected() {
        PerLabelCost::new(-1.0, 1.0, 1.0);
    }
}
