//! Reference implementation: the recursive tree edit distance formula of
//! Fig. 2, memoized on explicit forests.
//!
//! This is the executable specification of the distance. It is exponentially
//! wasteful in memory compared to the real algorithms (it memoizes on root
//! lists) and is used only as the correctness oracle for small inputs in the
//! test suite, and to double-check individual distances.

use crate::cost::CostModel;
use rted_tree::decompose::Forest;
use rted_tree::Tree;
use std::collections::HashMap;

/// State of one memoized recursion over forests of `f` × forests of `g`.
struct Rec<'a, L, C> {
    f: &'a Tree<L>,
    g: &'a Tree<L>,
    cm: &'a C,
    memo: HashMap<(Forest, Forest), f64>,
}

impl<'a, L, C: CostModel<L>> Rec<'a, L, C> {
    fn delete_all(&self, forest: &Forest, tree: &Tree<L>) -> f64 {
        forest
            .all_nodes(tree)
            .iter()
            .map(|&x| self.cm.delete(tree.label(rted_tree::NodeId(x))))
            .sum()
    }

    fn insert_all(&self, forest: &Forest, tree: &Tree<L>) -> f64 {
        forest
            .all_nodes(tree)
            .iter()
            .map(|&x| self.cm.insert(tree.label(rted_tree::NodeId(x))))
            .sum()
    }

    fn dist(&mut self, ff: Forest, gf: Forest) -> f64 {
        if ff.is_empty() {
            return self.insert_all(&gf, self.g);
        }
        if gf.is_empty() {
            return self.delete_all(&ff, self.f);
        }
        if let Some(&d) = self.memo.get(&(ff.clone(), gf.clone())) {
            return d;
        }
        // Decompose at the leftmost roots (the recursive formula yields the
        // same value for either direction choice).
        let v = ff.leftmost().unwrap();
        let w = gf.leftmost().unwrap();
        let f_is_tree = ff.0.len() == 1;
        let g_is_tree = gf.0.len() == 1;

        let del =
            self.dist(ff.remove_leftmost(self.f), gf.clone()) + self.cm.delete(self.f.label(v));
        let ins =
            self.dist(ff.clone(), gf.remove_leftmost(self.g)) + self.cm.insert(self.g.label(w));
        let third = if f_is_tree && g_is_tree {
            // Case (5): rename the roots, match the child forests.
            self.dist(ff.remove_leftmost(self.f), gf.remove_leftmost(self.g))
                + self.cm.rename(self.f.label(v), self.g.label(w))
        } else {
            // Cases (3)+(4): match subtree F_v against G_w, and the rest.
            let fv = Forest::tree(v);
            let gw = Forest::tree(w);
            let rest_f = Forest(ff.0[1..].to_vec());
            let rest_g = Forest(gf.0[1..].to_vec());
            self.dist(fv, gw) + self.dist(rest_f, rest_g)
        };
        let d = del.min(ins).min(third);
        self.memo.insert((ff, gf), d);
        d
    }
}

/// Computes the tree edit distance by the memoized recursive formula.
///
/// Intended for testing on small trees: time and memory grow with the
/// number of distinct forest pairs, which can be far beyond O(n²).
pub fn reference_ted<L, C: CostModel<L>>(f: &Tree<L>, g: &Tree<L>, cm: &C) -> f64 {
    let mut rec = Rec {
        f,
        g,
        cm,
        memo: HashMap::new(),
    };
    rec.dist(Forest::tree(f.root()), Forest::tree(g.root()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{PerLabelCost, UnitCost};
    use rted_tree::parse_bracket;

    fn d(a: &str, b: &str) -> f64 {
        let f = parse_bracket(a).unwrap();
        let g = parse_bracket(b).unwrap();
        reference_ted(&f, &g, &UnitCost)
    }

    #[test]
    fn identical_trees_distance_zero() {
        for s in ["{a}", "{a{b}{c}}", "{a{b{c{d}}}}"] {
            assert_eq!(d(s, s), 0.0);
        }
    }

    #[test]
    fn single_rename() {
        assert_eq!(d("{a{b}{c}}", "{a{b}{x}}"), 1.0);
        assert_eq!(d("{a}", "{b}"), 1.0);
    }

    #[test]
    fn single_delete_insert() {
        assert_eq!(d("{a{b}{c}}", "{a{b}}"), 1.0);
        assert_eq!(d("{a{b}}", "{a{b}{c}}"), 1.0);
        // Deleting an inner node reattaches its children.
        assert_eq!(d("{a{b{c}{d}}}", "{a{c}{d}}"), 1.0);
    }

    #[test]
    fn figure1_example() {
        // Figure 1 shows (conceptually) delete/insert/rename around node e.
        // T1 = a(b, d(c), e); delete d -> a(b, c, e); rename e->f is 1 more.
        assert_eq!(d("{a{b}{d{c}}{e}}", "{a{b}{c}{e}}"), 1.0);
        assert_eq!(d("{a{b}{d{c}}{e}}", "{a{b}{c}{f}}"), 2.0);
    }

    #[test]
    fn structural_move_costs_two() {
        // Moving a leaf across siblings = delete + insert.
        assert_eq!(d("{r{a{x}}{b}}", "{r{a}{b{x}}}"), 2.0);
    }

    #[test]
    fn disjoint_trees_full_rewrite() {
        // No common labels: rename root + rename/delete/insert everything.
        assert_eq!(d("{a{b}{c}}", "{x{y}{z}}"), 3.0);
        // Different sizes: 3 renames + 1 delete.
        assert_eq!(d("{a{b}{c}{d}}", "{x{y}{z}}"), 4.0);
    }

    #[test]
    fn ordered_semantics() {
        // Ordered trees: swapping children is NOT free.
        assert_eq!(d("{r{a}{b}}", "{r{b}{a}}"), 2.0);
    }

    #[test]
    fn weighted_costs() {
        let f = parse_bracket("{a{b}}").unwrap();
        let g = parse_bracket("{a}").unwrap();
        // Deleting b costs 2 under this model.
        let cm = PerLabelCost::new(2.0, 3.0, 0.5);
        assert_eq!(reference_ted(&f, &g, &cm), 2.0);
        // Inserting b costs 3.
        assert_eq!(reference_ted(&g, &f, &cm), 3.0);
        // Rename cheaper than delete+insert.
        let h = parse_bracket("{a{x}}").unwrap();
        assert_eq!(reference_ted(&f, &h, &cm), 0.5);
    }

    #[test]
    fn size_bounds_hold() {
        let f = parse_bracket("{a{b}{c{d}{e}}}").unwrap();
        let g = parse_bracket("{x{y}}").unwrap();
        let dist = reference_ted(&f, &g, &UnitCost);
        assert!(dist >= (f.len() as f64 - g.len() as f64).abs());
        assert!(dist <= (f.len() + g.len()) as f64);
    }
}
