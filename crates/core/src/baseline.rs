//! The baseline algorithm for the optimal strategy (§6.1 of the paper):
//! a direct memoized implementation of the cost formula in Fig. 5.
//!
//! Runs in O(n³) time (Theorem 2) against Algorithm 2's O(n²) — it exists
//! here as the executable specification that the optimized `OptStrategy`
//! engine is validated against, and to reproduce the Theorem-2 tightness
//! instance (left-branch × right-branch trees).

use crate::strategy::{PathChoice, Side};
use rted_tree::counts::DecompCounts;
use rted_tree::paths::relevant_subtrees;
use rted_tree::{NodeId, PathKind, Tree};

/// Result of the baseline optimal-strategy computation.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Cost of the optimal LRH strategy (number of relevant subproblems).
    pub cost: u64,
    /// Number of summations performed (the quantity bounded in Theorem 2).
    pub summations: u64,
}

struct Baseline<'a, L> {
    f: &'a Tree<L>,
    g: &'a Tree<L>,
    cf: DecompCounts,
    cg: DecompCounts,
    /// Memoized optimal cost per subtree pair; u64::MAX = not computed.
    memo: Vec<u64>,
    ng: usize,
    summations: u64,
}

impl<L> Baseline<'_, L> {
    fn cost(&mut self, v: NodeId, w: NodeId) -> u64 {
        let idx = v.idx() * self.ng + w.idx();
        if self.memo[idx] != u64::MAX {
            return self.memo[idx];
        }
        let szf = self.f.size(v) as u64;
        let szg = self.g.size(w) as u64;
        let mut best = u64::MAX;
        for choice in PathChoice::ALL {
            // Product term: the single-path function cost (Lemma 4).
            let product = match (choice.side, choice.kind) {
                (Side::F, PathKind::Left) => szf * self.cg.left_of(w),
                (Side::F, PathKind::Right) => szf * self.cg.right_of(w),
                (Side::F, PathKind::Heavy) => szf * self.cg.full_of(w),
                (Side::G, PathKind::Left) => szg * self.cf.left_of(v),
                (Side::G, PathKind::Right) => szg * self.cf.right_of(v),
                (Side::G, PathKind::Heavy) => szg * self.cf.full_of(v),
            };
            // Recursive term: sum over the relevant subtrees of the
            // decomposed side.
            let mut total = product;
            match choice.side {
                Side::F => {
                    for s in relevant_subtrees(self.f, v, choice.kind) {
                        total += self.cost(s, w);
                        self.summations += 1;
                    }
                }
                Side::G => {
                    for s in relevant_subtrees(self.g, w, choice.kind) {
                        total += self.cost(v, s);
                        self.summations += 1;
                    }
                }
            }
            best = best.min(total);
        }
        self.memo[idx] = best;
        best
    }
}

/// Computes the optimal LRH strategy cost by the §6.1 baseline algorithm.
pub fn baseline_optimal_cost<L>(f: &Tree<L>, g: &Tree<L>) -> BaselineResult {
    let ng = g.len();
    let mut b = Baseline {
        f,
        g,
        cf: DecompCounts::new(f),
        cg: DecompCounts::new(g),
        memo: vec![u64::MAX; f.len() * ng],
        ng,
        summations: 0,
    };
    // Iterative postorder-pair evaluation to bound recursion depth: the
    // memoized recursion only ever descends to smaller subtree pairs, so
    // filling pairs in ascending postorder of both nodes is valid.
    for v in f.nodes() {
        for w in g.nodes() {
            b.cost(v, w);
        }
    }
    let cost = b.cost(f.root(), g.root());
    BaselineResult {
        cost,
        summations: b.summations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::optimal_strategy;
    use rted_tree::parse_bracket;

    #[test]
    fn matches_algorithm2_on_samples() {
        let cases = [
            ("{a}", "{b}"),
            ("{3{1}{2}}", "{2{1}}"),
            ("{a{b{c}{d}}{e}}", "{x{y}{z{w{q}}}}"),
            ("{A{C}{B{G}{E{F}}{D}}}", "{A{B{D}{E{F}}}{C{G}}}"),
            ("{a{b{c{d{e{f}}}}}}", "{a{b}{c}{d}{e}{f}}"),
            ("{a{b}{c}{d}{e}{f}}", "{a{b{c{d{e{f}}}}}}"),
        ];
        for (a, b) in cases {
            let f = parse_bracket(a).unwrap();
            let g = parse_bracket(b).unwrap();
            let base = baseline_optimal_cost(&f, &g);
            let fast = optimal_strategy(&f, &g);
            assert_eq!(base.cost, fast.cost, "{a} vs {b}");
        }
    }

    #[test]
    fn summations_grow_cubically_on_lb_rb() {
        // Theorem 2 tightness: left-branch × right-branch trees force
        // Ω(n³) summations in the baseline.
        fn lb(depth: usize) -> String {
            // Left branch: spine to the left, one leaf to the right per level.
            let mut s = String::from("{x}");
            for _ in 0..depth {
                s = format!("{{x{s}{{x}}}}");
            }
            s
        }
        fn rb(depth: usize) -> String {
            let mut s = String::from("{x}");
            for _ in 0..depth {
                s = format!("{{x{{x}}{s}}}");
            }
            s
        }
        let small = {
            let f = parse_bracket(&lb(4)).unwrap();
            let g = parse_bracket(&rb(4)).unwrap();
            baseline_optimal_cost(&f, &g).summations
        };
        let big = {
            let f = parse_bracket(&lb(8)).unwrap();
            let g = parse_bracket(&rb(8)).unwrap();
            baseline_optimal_cost(&f, &g).summations
        };
        // Doubling the depth must grow summations by at least ~2^2.5 (the
        // cubic term dominates; sizes roughly double).
        assert!(big as f64 > small as f64 * 5.0, "small={small} big={big}");
    }
}
