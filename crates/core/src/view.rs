//! Orientation views over subtrees.
//!
//! The left-path and right-path machinery (Zhang–Shasha keyroot DPs, the
//! `∆L`/`∆R` single-path functions) are a single algorithm parameterized by
//! orientation: the right variant is the left variant run on the mirrored
//! tree. A [`SubtreeView`] exposes a subtree in either orientation through
//! one coordinate system — local ranks `1..=n` in (mirror) postorder — so
//! the DP code is written once.

use rted_tree::{NodeId, Tree};

/// A subtree of a tree viewed in left-to-right (`Left`) or right-to-left
/// (`Right`) postorder coordinates.
///
/// Local ranks are 1-based: rank `n` is the subtree root. In the `Left`
/// orientation rank order is postorder and `lml` is the leftmost leaf; in
/// the `Right` orientation rank order is mirror postorder and `lml` is the
/// rightmost leaf (the "leftmost" of the mirrored tree).
#[derive(Clone, Copy)]
pub(crate) struct SubtreeView<'a, L> {
    pub tree: &'a Tree<L>,
    /// Subtree size.
    pub n: u32,
    /// Global rank of local rank 1.
    base: u32,
    right: bool,
}

impl<'a, L> SubtreeView<'a, L> {
    /// Creates a view of the subtree rooted at `root`.
    pub fn new(tree: &'a Tree<L>, root: NodeId, right: bool) -> Self {
        let n = tree.size(root);
        let base = if right {
            tree.rpost(root) + 1 - n
        } else {
            root.0 + 1 - n
        };
        SubtreeView {
            tree,
            n,
            base,
            right,
        }
    }

    /// Node at local rank `r` (1-based).
    #[inline]
    pub fn node(&self, r: u32) -> NodeId {
        debug_assert!((1..=self.n).contains(&r));
        if self.right {
            self.tree.by_rpost(self.base + r - 1)
        } else {
            NodeId(self.base + r - 1)
        }
    }

    /// Local rank of node `v` (must lie in the subtree).
    #[inline]
    pub fn local(&self, v: NodeId) -> u32 {
        if self.right {
            self.tree.rpost(v) - self.base + 1
        } else {
            v.0 - self.base + 1
        }
    }

    /// Local rank of the view-leftmost leaf descendant of the node at local
    /// rank `r` (Zhang–Shasha's `l()` in view coordinates).
    #[inline]
    pub fn lml(&self, r: u32) -> u32 {
        let v = self.node(r);
        let leaf = if self.right {
            self.tree.rld(v)
        } else {
            self.tree.lld(v)
        };
        self.local(leaf)
    }

    /// Subtree size of the node at local rank `r`.
    #[cfg(test)]
    pub fn size(&self, r: u32) -> u32 {
        self.tree.size(self.node(r))
    }

    /// Keyroots of the subtree in this orientation, as ascending local
    /// ranks: the subtree root plus every node with a view-left sibling.
    ///
    /// These are exactly the roots of `T(F, Γ)` for the recursive
    /// left-path (resp. right-path) decomposition, so
    /// `Σ_{k ∈ keyroots} size(k) = |F(F, Γ_L)|` (resp. `Γ_R`).
    #[cfg(test)]
    pub fn keyroots(&self) -> Vec<u32> {
        let mut kr = Vec::new();
        self.keyroots_into(&mut kr);
        kr
    }

    /// [`keyroots`](Self::keyroots) writing into a caller-owned buffer
    /// (cleared first), so hot loops can reuse one allocation.
    pub fn keyroots_into(&self, kr: &mut Vec<u32>) {
        kr.clear();
        for r in 1..=self.n {
            if r == self.n {
                kr.push(r);
                continue;
            }
            let v = self.node(r);
            let p = self
                .tree
                .parent(v)
                .expect("non-root subtree node has a parent");
            // `v` is a keyroot iff it is not the view-first child of its
            // parent, i.e. its view-leftmost leaf differs from the parent's.
            let vleaf = if self.right {
                self.tree.rld(v)
            } else {
                self.tree.lld(v)
            };
            let pleaf = if self.right {
                self.tree.rld(p)
            } else {
                self.tree.lld(p)
            };
            if vleaf != pleaf {
                kr.push(r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rted_tree::counts::DecompCounts;
    use rted_tree::parse_bracket;

    #[test]
    fn left_view_is_identity() {
        let t = parse_bracket("{a{b{c}{d}}{e}}").unwrap();
        let v = SubtreeView::new(&t, t.root(), false);
        for r in 1..=v.n {
            assert_eq!(v.node(r).0, r - 1);
            assert_eq!(v.local(v.node(r)), r);
        }
        assert_eq!(v.lml(v.n), 1); // leftmost leaf of the root is node 0
    }

    #[test]
    fn right_view_mirrors() {
        // {a{b}{c}}: mirror postorder c, b, a.
        let t = parse_bracket("{a{b}{c}}").unwrap();
        let v = SubtreeView::new(&t, t.root(), true);
        assert_eq!(t.label(v.node(1)), "c");
        assert_eq!(t.label(v.node(2)), "b");
        assert_eq!(t.label(v.node(3)), "a");
        assert_eq!(v.lml(3), 1); // rightmost leaf c
    }

    #[test]
    fn keyroot_sizes_match_decomposition_counts() {
        for s in [
            "{a{b{c}{d}}{e}}",
            "{A{C}{B{G}{E{F}}{D}}}",
            "{a{b{c{d{e}}}}}",
            "{a{b}{c}{d}{e}}",
        ] {
            let t = parse_bracket(s).unwrap();
            let counts = DecompCounts::new(&t);
            for root in t.nodes() {
                let lv = SubtreeView::new(&t, root, false);
                let sum: u64 = lv.keyroots().iter().map(|&k| lv.size(k) as u64).sum();
                assert_eq!(sum, counts.left_of(root), "left, tree {s}, root {root}");
                let rv = SubtreeView::new(&t, root, true);
                let sum: u64 = rv.keyroots().iter().map(|&k| rv.size(k) as u64).sum();
                assert_eq!(sum, counts.right_of(root), "right, tree {s}, root {root}");
            }
        }
    }

    #[test]
    fn subtree_views_use_local_ranks() {
        let t = parse_bracket("{a{b{c}{d}}{e}}").unwrap();
        // Subtree at b = postorder id 2 (c=0,d=1,b=2).
        let v = SubtreeView::new(&t, NodeId(2), false);
        assert_eq!(v.n, 3);
        assert_eq!(t.label(v.node(1)), "c");
        assert_eq!(t.label(v.node(3)), "b");
        let rv = SubtreeView::new(&t, NodeId(2), true);
        assert_eq!(t.label(rv.node(1)), "d");
    }
}
