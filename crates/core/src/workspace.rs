//! Reusable scratch memory for the TED hot path.
//!
//! Every distance computation needs the same family of buffers: the
//! subtree-distance matrix, per-tree cost tables, the GTED work stack, and
//! the DP rows and side tables of the three single-path functions. A
//! [`Workspace`] owns one instance of each, handed out by `mem::take` and
//! returned when the borrowing phase finishes. Buffers are only ever
//! **length-reset** (`clear` + `resize`), never freed, so the second and
//! every later computation through the same workspace performs **zero heap
//! allocations** — each buffer is bound to one fixed use site, execution is
//! deterministic, and `Vec` capacity is monotone, so a repeated input meets
//! a buffer that is already big enough at every step.
//!
//! Entry points that accept a workspace:
//!
//! * [`Executor::with_workspace`](crate::gted::Executor::with_workspace) —
//!   a GTED execution borrowing its matrix and scratch from the workspace;
//! * [`Algorithm::run_in`](crate::rted::Algorithm::run_in) — any of the
//!   five algorithms, allocation-free after warm-up;
//! * [`compute_strategy_in`](crate::strategy::compute_strategy_in) — the
//!   row-recycled strategy computation.
//!
//! One workspace serves arbitrarily many pairs (sizes may vary — buffers
//! grow to the largest pair seen) but only one computation at a time:
//! every entry point takes `&mut Workspace`, so concurrent use is ruled
//! out by borrowing. Give each worker thread its own workspace (the index
//! crate's `WorkspacePool` does exactly that).

use crate::cost::CostTables;
use rted_tree::counts::DecompCounts;
use rted_tree::NodeId;

/// Slot sentinel for the strategy row pool.
pub(crate) const NO_ROW: u32 = u32::MAX;

/// Scratch buffers of the heavy-path single-path function `∆I` whose
/// lifetime is one `stage_rl` invocation.
#[derive(Debug, Default)]
pub(crate) struct RlScratch {
    /// δ(F-row, ∅) per re-addition row.
    pub col0: Vec<f64>,
    /// Per-row children-forest values, `(rows + 1) × (m + 1)`.
    pub kids: Vec<f64>,
    /// Subtree size per re-added node.
    pub sz_v: Vec<u32>,
    /// Delete cost per re-added node.
    pub del_v: Vec<f64>,
    /// The family-sliced DP sheet, `(rows + 1) × wmax`.
    pub stage: Vec<f64>,
    /// Per-family member tables, invariant across the re-addition rows:
    /// extreme-root node id, insert cost, jump column, and children-forest
    /// slot (`u32::MAX` when the member feeds no slot). Hoisted out of the
    /// row loop so the per-cell work is branch-free table reads.
    pub m_wnode: Vec<u32>,
    pub m_insw: Vec<f64>,
    pub m_jump: Vec<u32>,
    pub m_kid: Vec<u32>,
    /// Delete-stream row: `stage[prev row] + del(v)` bulk-computed per row
    /// as a pure min/add stream before the sequential pass.
    pub cand: Vec<f64>,
}

/// One DP row of `∆I`: δ(fixed A-forest, ·) over all canonical B-forests.
///
/// Lives in the workspace so the two row slots (`current` and `spare`)
/// rotate by `mem::swap` instead of reallocating per stage.
#[derive(Debug, Default)]
pub(crate) struct Row {
    /// Values per canonical pair, family-`b` layout.
    pub vals: Vec<f64>,
    /// `kids[a]` = δ(row forest, children-forest of node with local lpost
    /// `a`); meaningful for non-leaf nodes only.
    pub kids: Vec<f64>,
    /// δ(row forest, empty forest).
    pub col0: f64,
}

/// Reusable scratch memory for TED computations (see the module docs).
///
/// `Default`/[`Workspace::new`] build an empty workspace; buffers grow on
/// first use and are retained for the workspace's lifetime.
#[derive(Debug, Default)]
pub struct Workspace {
    // ---- executor state (matrix + cost tables + driver stack).
    /// Subtree distance matrix, row-major `[v_F][w_G]`.
    pub(crate) d: Vec<f64>,
    /// Cost tables of the left-hand tree.
    pub(crate) ftab: CostTables,
    /// Cost tables of the right-hand tree.
    pub(crate) gtab: CostTables,
    /// GTED work stack: `(v, w, code)` with `code == EXPAND` or an spf
    /// path-choice code.
    pub(crate) stack: Vec<(u32, u32, u8)>,
    /// Relevant-subtree scratch for strategy expansion.
    pub(crate) subs: Vec<NodeId>,
    /// Root-leaf path scratch for `∆I` dispatch.
    pub(crate) path: Vec<NodeId>,

    // ---- keyroot DP scratch (`∆L`/`∆R` and Zhang–Shasha).
    pub(crate) a_lml: Vec<u32>,
    pub(crate) b_lml: Vec<u32>,
    pub(crate) a_node: Vec<NodeId>,
    pub(crate) b_node: Vec<NodeId>,
    pub(crate) a_del: Vec<f64>,
    pub(crate) b_ins: Vec<f64>,
    /// Forest-distance sheet.
    pub(crate) fd: Vec<f64>,
    /// Row of per-cell candidate minima for the blocked keyroot DP: the
    /// order-independent (delete/rename/jump) terms are streamed into this
    /// row first, so the sequential insert chain is the only loop-carried
    /// dependence left in the second pass.
    pub(crate) cand: Vec<f64>,
    pub(crate) keyroots_a: Vec<u32>,
    pub(crate) keyroots_b: Vec<u32>,

    // ---- `∆I` scratch.
    /// The precomputed B-side canonical-forest tables.
    pub(crate) bside: crate::spf_i::BSide,
    /// Current top row of the period DP.
    pub(crate) row_cur: Row,
    /// Spare row rotated in by `mem::swap` at every stage.
    pub(crate) row_spare: Row,
    pub(crate) rl: RlScratch,
    /// Children of the current path node.
    pub(crate) children: Vec<NodeId>,
    /// Right siblings' nodes in re-addition order.
    pub(crate) add_r: Vec<NodeId>,
    /// Left siblings' nodes in re-addition order.
    pub(crate) add_l: Vec<NodeId>,

    // ---- strategy (Algorithm 2) scratch.
    pub(crate) counts_f: DecompCounts,
    pub(crate) counts_g: DecompCounts,
    pub(crate) froles: Vec<u8>,
    pub(crate) groles: Vec<u8>,
    pub(crate) lw: Vec<u64>,
    pub(crate) rw: Vec<u64>,
    pub(crate) hw: Vec<u64>,
    /// Row pool: interleaved `[L, R, H]` cost sums, one live row per
    /// F-node that has started accumulating child contributions.
    pub(crate) rows: Vec<Vec<u64>>,
    /// Free slots of `rows`.
    pub(crate) row_free: Vec<u32>,
    /// F-node → `rows` slot (`NO_ROW` when the node has no live row).
    pub(crate) row_of: Vec<u32>,
    /// High-water row width (`3 · |G|` over all runs): every pooled row
    /// is kept grown to this capacity, and new rows are born with it, so
    /// the pool's warm state is independent of the order pairs were
    /// served in. Without it, which under-sized recycled row a node pops
    /// depends on acquisition history, and a long-lived workspace serving
    /// mixed tree sizes keeps re-growing rows long after every size has
    /// been seen once — stray allocations a serving layer's zero-alloc
    /// contract trips over.
    pub(crate) row_width: usize,
    /// All-zeros stand-in row for leaves (which never accumulate).
    pub(crate) zero_row: Vec<u64>,
    /// Recyclable storage for [`Strategy::choices`]; taken by
    /// `compute_strategy_in`, returned via [`Workspace::recycle`].
    pub(crate) choices: Vec<u8>,

    // ---- edit-mapping backtrace scratch (see `mapping::edit_mapping_in`).
    /// Forest-DP sheet pool for the mapping backtrace: sheet `i` belongs
    /// to the frame at nesting depth `i` of the subtree-match recursion
    /// (a parent's sheet stays live while its children are traced, so one
    /// shared sheet is not enough). Slots are never freed; each is
    /// length-reset per use, so slot capacity is monotone and a repeated
    /// pair meets sheets that are already big enough — the same
    /// order-independence discipline as the strategy row pool above.
    pub(crate) trace_sheets: Vec<Vec<f64>>,
    /// Explicit frame stack of the backtrace (replaces recursion, so the
    /// per-level state lives here instead of on the call stack).
    pub(crate) trace_frames: Vec<crate::mapping::TraceFrame>,

    // ---- lifetime counters (observability).
    /// TED computations served by this workspace over its lifetime.
    pub(crate) ted_runs: u64,
    /// Relevant subproblems computed across all runs.
    pub(crate) subproblems_total: u64,
    /// Per-algorithm cost accounting, indexed by the algorithm's position
    /// in [`Algorithm::ALL`](crate::rted::Algorithm::ALL): runs,
    /// subproblems, and wall nanoseconds. Fixed-size arrays — recording
    /// is plain integer adds, inside the zero-allocation contract.
    pub(crate) alg_runs: [u64; 5],
    pub(crate) alg_subproblems: [u64; 5],
    pub(crate) alg_ns: [u64; 5],
}

/// Lifetime counters of one [`Workspace`], for observability.
///
/// Plain values read with `&self` — the workspace is single-threaded by
/// construction (every entry point takes `&mut Workspace`), so these are
/// ordinary integers, not atomics. A serving layer that pools workspaces
/// across workers reads each worker's counters and *feeds the deltas
/// upward* into its shared metrics after each request, instead of core
/// publishing through process-global state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkspaceStats {
    /// TED computations served by this workspace ([`Algorithm::run_in`]
    /// calls, including strategy-only reruns). Growth beyond the first
    /// run measures workspace *reuse* — runs answered from warm buffers.
    ///
    /// [`Algorithm::run_in`]: crate::rted::Algorithm::run_in
    pub ted_runs: u64,
    /// Relevant subproblems (DP cells) computed across all runs.
    pub subproblems: u64,
    /// Peak number of live strategy rows ever pooled (see
    /// [`Workspace::strategy_rows_peak`]).
    pub strategy_rows_peak: usize,
}

impl Workspace {
    /// An empty workspace; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Returns a [`Strategy`](crate::strategy::Strategy)'s choice matrix to
    /// the workspace so the next
    /// [`compute_strategy_in`](crate::strategy::compute_strategy_in) call
    /// reuses its allocation.
    pub fn recycle(&mut self, strategy: crate::strategy::Strategy) {
        self.choices = strategy.into_choices();
    }

    /// Peak number of live strategy rows ever pooled — the `O(n)` (in
    /// practice: tree-depth-ish) row count the recycled Algorithm 2 keeps
    /// instead of the dense `n_F` rows. Exposed for tests and diagnostics.
    pub fn strategy_rows_peak(&self) -> usize {
        self.rows.len()
    }

    /// This workspace's lifetime counters (see [`WorkspaceStats`]).
    pub fn lifetime_stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            ted_runs: self.ted_runs,
            subproblems: self.subproblems_total,
            strategy_rows_peak: self.rows.len(),
        }
    }

    /// Folds one completed run into the lifetime counters. Called by
    /// [`Algorithm::run_in`](crate::rted::Algorithm::run_in); plain
    /// integer adds, so the zero-allocation contract is untouched.
    #[inline]
    pub(crate) fn note_run(&mut self, subproblems: u64) {
        self.ted_runs += 1;
        self.subproblems_total += subproblems;
    }

    /// Folds one run's cost into the per-algorithm estimator slot
    /// `alg_index` (the algorithm's position in
    /// [`Algorithm::ALL`](crate::rted::Algorithm::ALL)).
    #[inline]
    pub(crate) fn note_algorithm(&mut self, alg_index: usize, subproblems: u64, ns: u64) {
        self.alg_runs[alg_index] += 1;
        self.alg_subproblems[alg_index] += subproblems;
        self.alg_ns[alg_index] += ns;
    }

    /// Observed per-algorithm cost over this workspace's lifetime, in
    /// [`Algorithm::ALL`](crate::rted::Algorithm::ALL) order — the raw
    /// material for the query planner's cost estimators: ns/subproblem
    /// calibrates the verifier crossover against the machine actually
    /// running, instead of a hard-coded constant.
    pub fn algorithm_costs(&self) -> [AlgorithmCost; 5] {
        let mut out = [AlgorithmCost::default(); 5];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = AlgorithmCost {
                runs: self.alg_runs[i],
                subproblems: self.alg_subproblems[i],
                ns: self.alg_ns[i],
            };
        }
        out
    }
}

/// Observed cost of one algorithm across a workspace's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AlgorithmCost {
    /// Runs served.
    pub runs: u64,
    /// Relevant subproblems computed, summed.
    pub subproblems: u64,
    /// Wall nanoseconds (strategy + distance phases), summed.
    pub ns: u64,
}

impl AlgorithmCost {
    /// Observed nanoseconds per subproblem, `None` until sampled.
    pub fn ns_per_subproblem(&self) -> Option<f64> {
        (self.subproblems > 0).then(|| self.ns as f64 / self.subproblems as f64)
    }
}
