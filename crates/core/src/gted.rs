//! GTED — the general tree edit distance algorithm (Algorithm 1).
//!
//! GTED executes any LRH path strategy in O(n²) space: it looks up the
//! strategy's root-leaf path for the current subtree pair, recurses on the
//! relevant subtrees hanging off that path, then runs the single-path
//! function matching the path type (`∆L`, `∆R`, or `∆I` for heavy paths).
//! When the path lies in the right-hand tree the roles are swapped and the
//! distance matrix is accessed transposed (with delete/insert costs
//! exchanged, which preserves the distance for asymmetric cost models).
//!
//! The executor fills the distance matrix `D` with δ(F_v, G_w) for **every**
//! pair of subtrees — the final entry is the tree edit distance.

use crate::cost::{CostModel, CostTables};
use crate::strategy::{PathChoice, Side, StrategyProvider};
use crate::{spf_i, spf_lr};
use rted_tree::paths::{relevant_subtrees, root_leaf_path};
use rted_tree::{NodeId, PathKind, Tree};

/// Instrumentation counters for one GTED run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Relevant subproblems computed (DP cells across all single-path
    /// function invocations). Matches the Fig.-5 cost of the strategy.
    pub subproblems: u64,
    /// Number of `∆L` invocations.
    pub spf_l_calls: u64,
    /// Number of `∆R` invocations.
    pub spf_r_calls: u64,
    /// Number of `∆I` (heavy path) invocations.
    pub spf_i_calls: u64,
}

/// A GTED execution over one pair of trees: owns the distance matrix and
/// the per-tree cost tables.
pub struct Executor<'a, L, C> {
    pub(crate) f: &'a Tree<L>,
    pub(crate) g: &'a Tree<L>,
    pub(crate) cm: &'a C,
    pub(crate) ftab: CostTables,
    pub(crate) gtab: CostTables,
    /// Subtree distance matrix, row-major `[v_F][w_G]`.
    d: Vec<f64>,
    /// Execution counters.
    pub stats: ExecStats,
}

impl<'a, L, C: CostModel<L>> Executor<'a, L, C> {
    /// Prepares an execution for the pair `(f, g)` under cost model `cm`.
    pub fn new(f: &'a Tree<L>, g: &'a Tree<L>, cm: &'a C) -> Self {
        let ftab = CostTables::new(f, cm);
        let gtab = CostTables::new(g, cm);
        let d = vec![f64::NAN; f.len() * g.len()];
        Executor {
            f,
            g,
            cm,
            ftab,
            gtab,
            d,
            stats: ExecStats::default(),
        }
    }

    /// Runs GTED under `strategy` and returns the tree edit distance.
    pub fn run<S: StrategyProvider<L>>(&mut self, strategy: &S) -> f64 {
        enum Work {
            Expand(NodeId, NodeId),
            Spf(NodeId, NodeId, PathChoice),
        }
        // Iterative driver (strategy recursions can nest O(n) deep on
        // degenerate shapes). Children are expanded before the parent
        // pair's single-path function runs.
        let mut stack = vec![Work::Expand(self.f.root(), self.g.root())];
        while let Some(work) = stack.pop() {
            match work {
                Work::Expand(v, w) => {
                    let choice = strategy.choose(self.f, self.g, v, w);
                    stack.push(Work::Spf(v, w, choice));
                    match choice.side {
                        Side::F => {
                            for s in relevant_subtrees(self.f, v, choice.kind) {
                                stack.push(Work::Expand(s, w));
                            }
                        }
                        Side::G => {
                            for s in relevant_subtrees(self.g, w, choice.kind) {
                                stack.push(Work::Expand(v, s));
                            }
                        }
                    }
                }
                Work::Spf(v, w, choice) => self.run_spf(v, w, choice),
            }
        }
        self.distance()
    }

    fn run_spf(&mut self, v: NodeId, w: NodeId, choice: PathChoice) {
        match (choice.side, choice.kind) {
            (Side::F, PathKind::Left) => {
                self.stats.spf_l_calls += 1;
                spf_lr::run(self, v, w, false, false);
            }
            (Side::F, PathKind::Right) => {
                self.stats.spf_r_calls += 1;
                spf_lr::run(self, v, w, false, true);
            }
            (Side::F, PathKind::Heavy) => {
                self.stats.spf_i_calls += 1;
                let path = root_leaf_path(self.f, v, PathKind::Heavy);
                spf_i::run(self, v, w, &path, false);
            }
            (Side::G, PathKind::Left) => {
                self.stats.spf_l_calls += 1;
                spf_lr::run(self, w, v, true, false);
            }
            (Side::G, PathKind::Right) => {
                self.stats.spf_r_calls += 1;
                spf_lr::run(self, w, v, true, true);
            }
            (Side::G, PathKind::Heavy) => {
                self.stats.spf_i_calls += 1;
                let path = root_leaf_path(self.g, w, PathKind::Heavy);
                spf_i::run(self, w, v, &path, true);
            }
        }
    }

    /// The computed tree edit distance (valid after [`Executor::run`]).
    #[inline]
    pub fn distance(&self) -> f64 {
        self.d[self.d.len() - 1]
    }

    /// Distance between the subtrees rooted at `v` (in `F`) and `w` (in
    /// `G`). All pairs are available after [`Executor::run`].
    #[inline]
    pub fn subtree_distance(&self, v: NodeId, w: NodeId) -> f64 {
        let d = self.d[v.idx() * self.g.len() + w.idx()];
        debug_assert!(!d.is_nan(), "distance ({v},{w}) read before computed");
        d
    }

    // ---- orientation-aware accessors used by the single-path functions.
    //
    // A single-path function decomposes the "A side"; `swapped == true`
    // means the A side is the original right-hand tree G, in which case
    // delete/insert roles and the D indexing are transposed.

    #[inline]
    pub(crate) fn tree_a(&self, swapped: bool) -> &'a Tree<L> {
        if swapped {
            self.g
        } else {
            self.f
        }
    }

    #[inline]
    pub(crate) fn tree_b(&self, swapped: bool) -> &'a Tree<L> {
        if swapped {
            self.f
        } else {
            self.g
        }
    }

    /// Cost of deleting A-side node `a` (in the oriented problem).
    #[inline]
    pub(crate) fn del_a(&self, a: NodeId, swapped: bool) -> f64 {
        if swapped {
            self.gtab.ins[a.idx()]
        } else {
            self.ftab.del[a.idx()]
        }
    }

    /// Cost of inserting B-side node `b`.
    #[inline]
    pub(crate) fn ins_b(&self, b: NodeId, swapped: bool) -> f64 {
        if swapped {
            self.ftab.del[b.idx()]
        } else {
            self.gtab.ins[b.idx()]
        }
    }

    /// Total delete cost of A-side subtree `a`.
    #[inline]
    pub(crate) fn sub_del_a(&self, a: NodeId, swapped: bool) -> f64 {
        if swapped {
            self.gtab.sub_ins[a.idx()]
        } else {
            self.ftab.sub_del[a.idx()]
        }
    }

    /// Total insert cost of B-side subtree `b`.
    #[inline]
    pub(crate) fn sub_ins_b(&self, b: NodeId, swapped: bool) -> f64 {
        if swapped {
            self.ftab.sub_del[b.idx()]
        } else {
            self.gtab.sub_ins[b.idx()]
        }
    }

    /// Rename cost from A-side node `a` to B-side node `b`.
    #[inline]
    pub(crate) fn ren_ab(&self, a: NodeId, b: NodeId, swapped: bool) -> f64 {
        if swapped {
            self.cm.rename(self.f.label(b), self.g.label(a))
        } else {
            self.cm.rename(self.f.label(a), self.g.label(b))
        }
    }

    /// Reads δ(subtree(a), subtree(b)) in the current orientation.
    #[inline]
    pub(crate) fn d_get(&self, a: NodeId, b: NodeId, swapped: bool) -> f64 {
        let idx = if swapped {
            b.idx() * self.g.len() + a.idx()
        } else {
            a.idx() * self.g.len() + b.idx()
        };
        let d = self.d[idx];
        debug_assert!(!d.is_nan(), "D({a},{b}) read before computed");
        d
    }

    /// Writes δ(subtree(a), subtree(b)) in the current orientation.
    #[inline]
    pub(crate) fn d_set(&mut self, a: NodeId, b: NodeId, swapped: bool, val: f64) {
        let idx = if swapped {
            b.idx() * self.g.len() + a.idx()
        } else {
            a.idx() * self.g.len() + b.idx()
        };
        self.d[idx] = val;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UnitCost;
    use crate::reference::reference_ted;
    use crate::strategy::{optimal_strategy, DemaineHeavy};
    use crate::zs::zhang_shasha;
    use rted_tree::parse_bracket;

    const CASES: &[(&str, &str)] = &[
        ("{a}", "{b}"),
        ("{a{b}}", "{a}"),
        ("{a{b}{c{d}}}", "{a{b{d}}{c}}"),
        ("{a{b{c}{d}}{e}}", "{x{y}{z{w{q}}}}"),
        ("{A{C}{B{G}{E{F}}{D}}}", "{A{B{D}{E{F}}}{C{G}}}"),
        ("{r{a{x}}{b}}", "{r{a}{b{x}}}"),
        ("{a{a}{a}{a}}", "{a{a{a}}}"),
        ("{a{b{c{d{e}}}}}", "{e{d{c{b{a}}}}}"),
        ("{a{b}{c}{d}{e}{f}}", "{a{b{c{d{e{f}}}}}}"),
    ];

    fn check_strategy<S: StrategyProvider<String>>(s: &S, name: &str) {
        for (a, b) in CASES {
            let f = parse_bracket(a).unwrap();
            let g = parse_bracket(b).unwrap();
            let want = reference_ted(&f, &g, &UnitCost);
            let mut exec = Executor::new(&f, &g, &UnitCost);
            let got = exec.run(s);
            assert_eq!(got, want, "{name}: {a} vs {b}");
        }
    }

    #[test]
    fn const_left_matches_reference() {
        check_strategy(
            &PathChoice {
                side: Side::F,
                kind: PathKind::Left,
            },
            "F-Left",
        );
        check_strategy(
            &PathChoice {
                side: Side::G,
                kind: PathKind::Left,
            },
            "G-Left",
        );
    }

    #[test]
    fn const_right_matches_reference() {
        check_strategy(
            &PathChoice {
                side: Side::F,
                kind: PathKind::Right,
            },
            "F-Right",
        );
        check_strategy(
            &PathChoice {
                side: Side::G,
                kind: PathKind::Right,
            },
            "G-Right",
        );
    }

    #[test]
    fn const_heavy_matches_reference() {
        check_strategy(
            &PathChoice {
                side: Side::F,
                kind: PathKind::Heavy,
            },
            "Klein-H",
        );
        check_strategy(
            &PathChoice {
                side: Side::G,
                kind: PathKind::Heavy,
            },
            "G-Heavy",
        );
    }

    #[test]
    fn demaine_matches_reference() {
        check_strategy(&DemaineHeavy, "Demaine-H");
    }

    #[test]
    fn optimal_strategy_matches_reference() {
        for (a, b) in CASES {
            let f = parse_bracket(a).unwrap();
            let g = parse_bracket(b).unwrap();
            let want = reference_ted(&f, &g, &UnitCost);
            let strat = optimal_strategy(&f, &g);
            let mut exec = Executor::new(&f, &g, &UnitCost);
            let got = exec.run(&strat);
            assert_eq!(got, want, "RTED: {a} vs {b}");
        }
    }

    #[test]
    fn all_subtree_pairs_filled_and_match_zs() {
        for (a, b) in CASES {
            let f = parse_bracket(a).unwrap();
            let g = parse_bracket(b).unwrap();
            let strat = optimal_strategy(&f, &g);
            let mut exec = Executor::new(&f, &g, &UnitCost);
            exec.run(&strat);
            let zs = zhang_shasha(&f, &g, &UnitCost, false);
            for v in f.nodes() {
                for w in g.nodes() {
                    let want = zs.subtree_distance(v.0 + 1, w.0 + 1, g.len() as u32);
                    let got = exec.subtree_distance(v, w);
                    assert_eq!(got, want, "{a} vs {b}, pair ({v},{w})");
                }
            }
        }
    }

    #[test]
    fn measured_subproblems_match_strategy_cost() {
        use crate::strategy::{compute_strategy, FixedChooser};
        for (a, b) in CASES {
            let f = parse_bracket(a).unwrap();
            let g = parse_bracket(b).unwrap();
            for choice in PathChoice::ALL {
                let predicted = compute_strategy(&f, &g, &FixedChooser(choice)).cost;
                let mut exec = Executor::new(&f, &g, &UnitCost);
                exec.run(&choice);
                assert_eq!(
                    exec.stats.subproblems, predicted,
                    "{a} vs {b}, strategy {choice}"
                );
            }
            // And for the optimal strategy.
            let strat = optimal_strategy(&f, &g);
            let mut exec = Executor::new(&f, &g, &UnitCost);
            exec.run(&strat);
            assert_eq!(exec.stats.subproblems, strat.cost, "{a} vs {b}, RTED");
        }
    }
}
