//! GTED — the general tree edit distance algorithm (Algorithm 1).
//!
//! GTED executes any LRH path strategy in O(n²) space: it looks up the
//! strategy's root-leaf path for the current subtree pair, recurses on the
//! relevant subtrees hanging off that path, then runs the single-path
//! function matching the path type (`∆L`, `∆R`, or `∆I` for heavy paths).
//! When the path lies in the right-hand tree the roles are swapped and the
//! distance matrix is accessed transposed (with delete/insert costs
//! exchanged, which preserves the distance for asymmetric cost models).
//!
//! The executor fills the distance matrix `D` with δ(F_v, G_w) for **every**
//! pair of subtrees — the final entry is the tree edit distance.

use crate::cost::{CostModel, CostTables};
use crate::strategy::{PathChoice, Side, StrategyProvider};
use crate::workspace::Workspace;
use crate::{spf_i, spf_lr};
use rted_tree::paths::{relevant_subtrees_into, root_leaf_path_into};
use rted_tree::{NodeId, PathKind, Tree};

/// Instrumentation counters for one GTED run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Relevant subproblems computed (DP cells across all single-path
    /// function invocations). Matches the Fig.-5 cost of the strategy.
    pub subproblems: u64,
    /// Number of `∆L` invocations.
    pub spf_l_calls: u64,
    /// Number of `∆R` invocations.
    pub spf_r_calls: u64,
    /// Number of `∆I` (heavy path) invocations.
    pub spf_i_calls: u64,
}

/// Work-stack codes: `EXPAND` marks a pair awaiting strategy expansion;
/// any other value is the [`PathChoice`] code of a pending single-path
/// function. Encoded so the driver stack is a flat reusable buffer.
const EXPAND: u8 = u8::MAX;

/// A GTED execution over one pair of trees: owns (or borrows from a
/// [`Workspace`]) the distance matrix and the per-tree cost tables.
pub struct Executor<'a, L, C> {
    pub(crate) f: &'a Tree<L>,
    pub(crate) g: &'a Tree<L>,
    pub(crate) cm: &'a C,
    pub(crate) ftab: CostTables,
    pub(crate) gtab: CostTables,
    /// Subtree distance matrix, row-major `[v_F][w_G]`.
    d: Vec<f64>,
    /// Scratch source for the single-path functions; `Some` when borrowed
    /// from a caller's workspace (matrix and tables are then returned to
    /// it on drop), `None` when self-contained.
    ws: Option<&'a mut Workspace>,
    /// Owned scratch for the self-contained mode.
    ws_owned: Workspace,
    /// Execution counters.
    pub stats: ExecStats,
}

impl<'a, L, C: CostModel<L>> Executor<'a, L, C> {
    /// Prepares a self-contained execution for the pair `(f, g)` under
    /// cost model `cm`. All buffers are freshly allocated and dropped with
    /// the executor; use [`Executor::with_workspace`] to amortize them
    /// across many pairs.
    pub fn new(f: &'a Tree<L>, g: &'a Tree<L>, cm: &'a C) -> Self {
        let ftab = CostTables::new(f, cm);
        let gtab = CostTables::new(g, cm);
        let d = vec![f64::NAN; f.len() * g.len()];
        Executor {
            f,
            g,
            cm,
            ftab,
            gtab,
            d,
            ws: None,
            ws_owned: Workspace::new(),
            stats: ExecStats::default(),
        }
    }

    /// Prepares an execution whose distance matrix, cost tables and all
    /// single-path-function scratch come from `ws`. Buffers are length-
    /// reset, never freed, and handed back when the executor drops — so a
    /// workspace that has already served a pair of these sizes makes the
    /// whole execution allocation-free.
    pub fn with_workspace(
        f: &'a Tree<L>,
        g: &'a Tree<L>,
        cm: &'a C,
        ws: &'a mut Workspace,
    ) -> Self {
        let mut ftab = std::mem::take(&mut ws.ftab);
        let mut gtab = std::mem::take(&mut ws.gtab);
        let mut d = std::mem::take(&mut ws.d);
        ftab.rebuild(f, cm);
        gtab.rebuild(g, cm);
        d.clear();
        d.resize(f.len() * g.len(), f64::NAN);
        Executor {
            f,
            g,
            cm,
            ftab,
            gtab,
            d,
            ws: Some(ws),
            ws_owned: Workspace::new(),
            stats: ExecStats::default(),
        }
    }

    /// The scratch workspace serving the single-path functions.
    #[inline]
    pub(crate) fn scratch(&mut self) -> &mut Workspace {
        match self.ws {
            Some(ref mut ws) => ws,
            None => &mut self.ws_owned,
        }
    }

    /// Runs GTED under `strategy` and returns the tree edit distance.
    pub fn run<S: StrategyProvider<L>>(&mut self, strategy: &S) -> f64 {
        // Iterative driver (strategy recursions can nest O(n) deep on
        // degenerate shapes). Children are expanded before the parent
        // pair's single-path function runs. The stack and the relevant-
        // subtree scratch live in the workspace.
        let mut stack = std::mem::take(&mut self.scratch().stack);
        let mut subs = std::mem::take(&mut self.scratch().subs);
        stack.clear();
        stack.push((self.f.root().0, self.g.root().0, EXPAND));
        while let Some((v, w, code)) = stack.pop() {
            let (v, w) = (NodeId(v), NodeId(w));
            if code == EXPAND {
                let choice = strategy.choose(self.f, self.g, v, w);
                stack.push((v.0, w.0, choice.code()));
                match choice.side {
                    Side::F => {
                        relevant_subtrees_into(self.f, v, choice.kind, &mut subs);
                        for &s in &subs {
                            stack.push((s.0, w.0, EXPAND));
                        }
                    }
                    Side::G => {
                        relevant_subtrees_into(self.g, w, choice.kind, &mut subs);
                        for &s in &subs {
                            stack.push((v.0, s.0, EXPAND));
                        }
                    }
                }
            } else {
                self.run_spf(v, w, PathChoice::from_code(code));
            }
        }
        self.scratch().stack = stack;
        self.scratch().subs = subs;
        self.distance()
    }

    fn run_spf(&mut self, v: NodeId, w: NodeId, choice: PathChoice) {
        match (choice.side, choice.kind) {
            (Side::F, PathKind::Left) => {
                self.stats.spf_l_calls += 1;
                spf_lr::run(self, v, w, false, false);
            }
            (Side::F, PathKind::Right) => {
                self.stats.spf_r_calls += 1;
                spf_lr::run(self, v, w, false, true);
            }
            (Side::F, PathKind::Heavy) => {
                self.stats.spf_i_calls += 1;
                let mut path = std::mem::take(&mut self.scratch().path);
                root_leaf_path_into(self.f, v, PathKind::Heavy, &mut path);
                spf_i::run(self, v, w, &path, false);
                self.scratch().path = path;
            }
            (Side::G, PathKind::Left) => {
                self.stats.spf_l_calls += 1;
                spf_lr::run(self, w, v, true, false);
            }
            (Side::G, PathKind::Right) => {
                self.stats.spf_r_calls += 1;
                spf_lr::run(self, w, v, true, true);
            }
            (Side::G, PathKind::Heavy) => {
                self.stats.spf_i_calls += 1;
                let mut path = std::mem::take(&mut self.scratch().path);
                root_leaf_path_into(self.g, w, PathKind::Heavy, &mut path);
                spf_i::run(self, w, v, &path, true);
                self.scratch().path = path;
            }
        }
    }

    /// The computed tree edit distance (valid after [`Executor::run`]).
    #[inline]
    pub fn distance(&self) -> f64 {
        self.d[self.d.len() - 1]
    }

    /// Distance between the subtrees rooted at `v` (in `F`) and `w` (in
    /// `G`). All pairs are available after [`Executor::run`].
    #[inline]
    pub fn subtree_distance(&self, v: NodeId, w: NodeId) -> f64 {
        let d = self.d[v.idx() * self.g.len() + w.idx()];
        debug_assert!(!d.is_nan(), "distance ({v},{w}) read before computed");
        d
    }

    // ---- orientation-aware accessors used by the single-path functions.
    //
    // A single-path function decomposes the "A side"; `swapped == true`
    // means the A side is the original right-hand tree G, in which case
    // delete/insert roles and the D indexing are transposed.

    #[inline]
    pub(crate) fn tree_a(&self, swapped: bool) -> &'a Tree<L> {
        if swapped {
            self.g
        } else {
            self.f
        }
    }

    #[inline]
    pub(crate) fn tree_b(&self, swapped: bool) -> &'a Tree<L> {
        if swapped {
            self.f
        } else {
            self.g
        }
    }

    /// Cost of deleting A-side node `a` (in the oriented problem).
    #[inline]
    pub(crate) fn del_a(&self, a: NodeId, swapped: bool) -> f64 {
        if swapped {
            self.gtab.ins[a.idx()]
        } else {
            self.ftab.del[a.idx()]
        }
    }

    /// Cost of inserting B-side node `b`.
    #[inline]
    pub(crate) fn ins_b(&self, b: NodeId, swapped: bool) -> f64 {
        if swapped {
            self.ftab.del[b.idx()]
        } else {
            self.gtab.ins[b.idx()]
        }
    }

    /// Total delete cost of A-side subtree `a`.
    #[inline]
    pub(crate) fn sub_del_a(&self, a: NodeId, swapped: bool) -> f64 {
        if swapped {
            self.gtab.sub_ins[a.idx()]
        } else {
            self.ftab.sub_del[a.idx()]
        }
    }

    /// Total insert cost of B-side subtree `b`.
    #[inline]
    pub(crate) fn sub_ins_b(&self, b: NodeId, swapped: bool) -> f64 {
        if swapped {
            self.ftab.sub_del[b.idx()]
        } else {
            self.gtab.sub_ins[b.idx()]
        }
    }

    /// Rename cost from A-side node `a` to B-side node `b`.
    #[inline]
    pub(crate) fn ren_ab(&self, a: NodeId, b: NodeId, swapped: bool) -> f64 {
        if swapped {
            self.cm.rename(self.f.label(b), self.g.label(a))
        } else {
            self.cm.rename(self.f.label(a), self.g.label(b))
        }
    }

    /// Reads δ(subtree(a), subtree(b)) in the current orientation.
    #[inline]
    pub(crate) fn d_get(&self, a: NodeId, b: NodeId, swapped: bool) -> f64 {
        let idx = if swapped {
            b.idx() * self.g.len() + a.idx()
        } else {
            a.idx() * self.g.len() + b.idx()
        };
        let d = self.d[idx];
        debug_assert!(!d.is_nan(), "D({a},{b}) read before computed");
        d
    }

    /// Writes δ(subtree(a), subtree(b)) in the current orientation.
    #[inline]
    pub(crate) fn d_set(&mut self, a: NodeId, b: NodeId, swapped: bool, val: f64) {
        let idx = if swapped {
            b.idx() * self.g.len() + a.idx()
        } else {
            a.idx() * self.g.len() + b.idx()
        };
        self.d[idx] = val;
    }
}

impl<L, C> Drop for Executor<'_, L, C> {
    fn drop(&mut self) {
        // Hand the matrix and cost tables back to the borrowed workspace
        // so the next executor built on it reuses their capacity.
        if let Some(ws) = self.ws.take() {
            ws.d = std::mem::take(&mut self.d);
            ws.ftab = std::mem::take(&mut self.ftab);
            ws.gtab = std::mem::take(&mut self.gtab);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UnitCost;
    use crate::reference::reference_ted;
    use crate::strategy::{optimal_strategy, DemaineHeavy};
    use crate::zs::zhang_shasha;
    use rted_tree::parse_bracket;

    const CASES: &[(&str, &str)] = &[
        ("{a}", "{b}"),
        ("{a{b}}", "{a}"),
        ("{a{b}{c{d}}}", "{a{b{d}}{c}}"),
        ("{a{b{c}{d}}{e}}", "{x{y}{z{w{q}}}}"),
        ("{A{C}{B{G}{E{F}}{D}}}", "{A{B{D}{E{F}}}{C{G}}}"),
        ("{r{a{x}}{b}}", "{r{a}{b{x}}}"),
        ("{a{a}{a}{a}}", "{a{a{a}}}"),
        ("{a{b{c{d{e}}}}}", "{e{d{c{b{a}}}}}"),
        ("{a{b}{c}{d}{e}{f}}", "{a{b{c{d{e{f}}}}}}"),
    ];

    fn check_strategy<S: StrategyProvider<String>>(s: &S, name: &str) {
        for (a, b) in CASES {
            let f = parse_bracket(a).unwrap();
            let g = parse_bracket(b).unwrap();
            let want = reference_ted(&f, &g, &UnitCost);
            let mut exec = Executor::new(&f, &g, &UnitCost);
            let got = exec.run(s);
            assert_eq!(got, want, "{name}: {a} vs {b}");
        }
    }

    #[test]
    fn const_left_matches_reference() {
        check_strategy(
            &PathChoice {
                side: Side::F,
                kind: PathKind::Left,
            },
            "F-Left",
        );
        check_strategy(
            &PathChoice {
                side: Side::G,
                kind: PathKind::Left,
            },
            "G-Left",
        );
    }

    #[test]
    fn const_right_matches_reference() {
        check_strategy(
            &PathChoice {
                side: Side::F,
                kind: PathKind::Right,
            },
            "F-Right",
        );
        check_strategy(
            &PathChoice {
                side: Side::G,
                kind: PathKind::Right,
            },
            "G-Right",
        );
    }

    #[test]
    fn const_heavy_matches_reference() {
        check_strategy(
            &PathChoice {
                side: Side::F,
                kind: PathKind::Heavy,
            },
            "Klein-H",
        );
        check_strategy(
            &PathChoice {
                side: Side::G,
                kind: PathKind::Heavy,
            },
            "G-Heavy",
        );
    }

    #[test]
    fn demaine_matches_reference() {
        check_strategy(&DemaineHeavy, "Demaine-H");
    }

    #[test]
    fn optimal_strategy_matches_reference() {
        for (a, b) in CASES {
            let f = parse_bracket(a).unwrap();
            let g = parse_bracket(b).unwrap();
            let want = reference_ted(&f, &g, &UnitCost);
            let strat = optimal_strategy(&f, &g);
            let mut exec = Executor::new(&f, &g, &UnitCost);
            let got = exec.run(&strat);
            assert_eq!(got, want, "RTED: {a} vs {b}");
        }
    }

    #[test]
    fn all_subtree_pairs_filled_and_match_zs() {
        for (a, b) in CASES {
            let f = parse_bracket(a).unwrap();
            let g = parse_bracket(b).unwrap();
            let strat = optimal_strategy(&f, &g);
            let mut exec = Executor::new(&f, &g, &UnitCost);
            exec.run(&strat);
            let zs = zhang_shasha(&f, &g, &UnitCost, false);
            for v in f.nodes() {
                for w in g.nodes() {
                    let want = zs.subtree_distance(v.0 + 1, w.0 + 1, g.len() as u32);
                    let got = exec.subtree_distance(v, w);
                    assert_eq!(got, want, "{a} vs {b}, pair ({v},{w})");
                }
            }
        }
    }

    #[test]
    fn measured_subproblems_match_strategy_cost() {
        use crate::strategy::{compute_strategy, FixedChooser};
        for (a, b) in CASES {
            let f = parse_bracket(a).unwrap();
            let g = parse_bracket(b).unwrap();
            for choice in PathChoice::ALL {
                let predicted = compute_strategy(&f, &g, &FixedChooser(choice)).cost;
                let mut exec = Executor::new(&f, &g, &UnitCost);
                exec.run(&choice);
                assert_eq!(
                    exec.stats.subproblems, predicted,
                    "{a} vs {b}, strategy {choice}"
                );
            }
            // And for the optimal strategy.
            let strat = optimal_strategy(&f, &g);
            let mut exec = Executor::new(&f, &g, &UnitCost);
            exec.run(&strat);
            assert_eq!(exec.stats.subproblems, strat.cost, "{a} vs {b}, RTED");
        }
    }
}
