//! Bounded tree edit distance: decide `ted(F, G) ≤ τ` without paying for
//! the full DP when the answer is "no".
//!
//! Index queries always verify candidates against a known budget (τ for
//! range/join, the current radius for top-k), so the verifier can stop the
//! moment the budget is provably blown. Following the bounded-TED
//! literature (Jin 2021; Nogler–Saha–Xu 2024), [`ted_at_most`] runs a
//! Zhang–Shasha-shaped keyroot DP with three budget devices stacked on the
//! exact recurrence:
//!
//! 1. **Size pre-bound.** `|n_F − n_G|` surplus nodes must be deleted (or
//!    inserted), each costing at least the cheapest per-node delete
//!    (insert) cost, so pairs whose size gap alone exceeds τ are rejected
//!    in O(n) without touching the DP.
//! 2. **Banding.** In sheet-local coordinates `x' = x − l_i + 1`,
//!    `y' = y − l_j + 1`, the exact forest distance of the prefix pair
//!    `(x', y')` is at least `(x' − y')⁺ · min_del` and
//!    `(y' − x')⁺ · min_ins`: the surplus prefix nodes have no possible
//!    partners. Cells outside the band `x' − y' ≤ ⌊τ/min_del⌋ ∧
//!    y' − x' ≤ ⌊τ/min_ins⌋` therefore exceed τ and are never computed —
//!    they read as `+∞`, which keeps every computed cell an
//!    *over*-approximation that is **exact whenever the true value is
//!    ≤ τ** (an optimal derivation of a ≤ τ cell only passes through ≤ τ,
//!    hence in-band, cells, because every DP addition is non-negative).
//! 3. **Frontier abandonment.** In the final sheet (the root keyroot
//!    pair — the lone full `n_F × n_G` sheet, and the only one whose
//!    subtree-distance writes nobody reads later), each row's cells are
//!    augmented with a completion lower bound
//!    `comp(x, y) = ((n_F−x) − (n_G−y))⁺·min_del + ((n_G−y) −
//!    (n_F−x))⁺·min_ins`. If an optimal mapping of cost `d ≤ τ` exists,
//!    its restriction to the postorder prefixes `F[1..x]` and `G[1..c]`
//!    (with `c` the largest partner rank used by `F[1..x]`) is a valid
//!    prefix alignment, so **every** row `x` contains a cell with
//!    `fd(x, c) + comp(x, c) ≤ d` — order preservation forces the
//!    remaining nodes to map among themselves, which is what `comp`
//!    undercounts. A row whose minimum augmented entry exceeds τ therefore
//!    certifies `ted > τ`, and the kernel abandons the pair. (The check is
//!    deliberately *not* applied to earlier sheets: abandoning one midway
//!    would leave subtree distances unwritten that later sheets still
//!    read.)
//!
//! The result is [`BoundedResult::Exact`] — bit-identical to the exact
//! algorithms — whenever the distance is within budget, and
//! [`BoundedResult::Exceeds`] with a certified lower bound otherwise. All
//! scratch comes from the [`Workspace`] (the same pooled buffers as the
//! Zhang–Shasha kernel), so warm calls stay allocation-free.

use crate::cost::CostModel;
use crate::view::SubtreeView;
use crate::workspace::Workspace;
use crate::zs::zhang_shasha_in;
use rted_tree::Tree;

/// Outcome of a budgeted distance computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundedResult {
    /// The distance is within budget; the payload is the exact distance
    /// (identical to what the exact algorithms compute).
    Exact(f64),
    /// The distance exceeds the budget; the payload is a certified lower
    /// bound on the true distance (at least the budget itself whenever the
    /// DP ran, possibly larger when the size pre-bound already decides).
    Exceeds(f64),
}

impl BoundedResult {
    /// `true` for [`BoundedResult::Exact`].
    #[inline]
    pub fn is_exact(&self) -> bool {
        matches!(self, BoundedResult::Exact(_))
    }

    /// The payload: the exact distance or the lower bound.
    #[inline]
    pub fn value(&self) -> f64 {
        match *self {
            BoundedResult::Exact(d) => d,
            BoundedResult::Exceeds(b) => b,
        }
    }
}

/// A bounded run with its work counters (see [`ted_at_most_run`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedRun {
    /// The budgeted outcome.
    pub result: BoundedResult,
    /// In-band DP cells actually computed (the analogue of the exact
    /// algorithms' relevant-subproblem count).
    pub subproblems: u64,
    /// `true` when the kernel exited before running the DP to completion:
    /// the size pre-bound rejected the pair outright, or a final-sheet
    /// frontier certified `ted > τ` mid-DP. A completed DP whose corner
    /// merely lands above τ is not an early exit.
    pub early_exit: bool,
}

/// Decides whether `ted(f, g) ≤ tau` under cost model `cm`, drawing all
/// scratch from `ws` (allocation-free once the workspace is warm).
///
/// Returns [`BoundedResult::Exact`] with the true distance when it is
/// ≤ `tau`, and [`BoundedResult::Exceeds`] with a lower bound `b ≤
/// ted(f, g)` otherwise. A non-finite `tau` (`+∞`) degenerates to the
/// exact Zhang–Shasha kernel. `tau` must not be NaN.
pub fn ted_at_most<L, C: CostModel<L>>(
    f: &Tree<L>,
    g: &Tree<L>,
    cm: &C,
    tau: f64,
    ws: &mut Workspace,
) -> BoundedResult {
    ted_at_most_run(f, g, cm, tau, ws).result
}

/// [`ted_at_most`] with work counters, for verifiers and benchmarks.
pub fn ted_at_most_run<L, C: CostModel<L>>(
    f: &Tree<L>,
    g: &Tree<L>,
    cm: &C,
    tau: f64,
    ws: &mut Workspace,
) -> BoundedRun {
    assert!(!tau.is_nan(), "distance budget must not be NaN");
    if tau == f64::INFINITY {
        // No budget: the exact kernel, verbatim.
        let (d, subproblems) = zhang_shasha_in(f, g, cm, false, ws);
        ws.note_run(subproblems);
        return BoundedRun {
            result: BoundedResult::Exact(d),
            subproblems,
            early_exit: false,
        };
    }
    if tau < 0.0 {
        // Distances are non-negative, so nothing fits a negative budget.
        ws.note_run(0);
        return BoundedRun {
            result: BoundedResult::Exceeds(0.0),
            subproblems: 0,
            early_exit: true,
        };
    }

    let fv = SubtreeView::new(f, f.root(), false);
    let gv = SubtreeView::new(g, g.root(), false);
    ws.ftab.rebuild(f, cm);
    ws.gtab.rebuild(g, cm);

    let nf = fv.n;
    let ng = gv.n;

    // Cheapest single delete / insert: the weights behind the size
    // pre-bound, the band widths, and the completion bounds.
    let min_del = ws.ftab.del.iter().copied().fold(f64::INFINITY, f64::min);
    let min_ins = ws.gtab.ins.iter().copied().fold(f64::INFINITY, f64::min);

    // Size pre-bound: the surplus nodes of the larger tree have no
    // partners, so each costs at least one cheapest delete (insert).
    let lb_size = if nf >= ng {
        (nf - ng) as f64 * min_del
    } else {
        (ng - nf) as f64 * min_ins
    };
    if lb_size > tau {
        ws.note_run(0);
        return BoundedRun {
            result: BoundedResult::Exceeds(lb_size),
            subproblems: 0,
            early_exit: true,
        };
    }

    // Band half-widths in sheet-local coordinates: a prefix pair carrying
    // more than ⌊τ/min_del⌋ surplus F-nodes (⌊τ/min_ins⌋ surplus G-nodes)
    // already costs more than τ. A zero min cost makes the band infinite —
    // the kernel degrades to a plain (still exact) full-sheet DP.
    const WIDE: i64 = i64::MAX / 4;
    let half_width = |unit: f64| -> i64 {
        if unit > 0.0 {
            let b = (tau / unit).floor();
            if b >= WIDE as f64 {
                WIDE
            } else {
                b as i64
            }
        } else {
            WIDE
        }
    };
    let bd = half_width(min_del);
    let bi = half_width(min_ins);

    let stride = (ng + 1) as usize;
    let td = &mut ws.d;
    td.clear();
    // +∞, not 0: banded-out subtree pairs must read as "too expensive",
    // and every cell is written at most once (by its own keyroot sheet).
    td.resize((nf as usize + 1) * stride, f64::INFINITY);
    let fd = &mut ws.fd;
    fd.clear();
    fd.resize((nf as usize + 1) * stride, f64::INFINITY);

    let f_lml = &mut ws.a_lml;
    f_lml.clear();
    f_lml.extend(std::iter::once(0).chain((1..=nf).map(|r| fv.lml(r))));
    let g_lml = &mut ws.b_lml;
    g_lml.clear();
    g_lml.extend(std::iter::once(0).chain((1..=ng).map(|r| gv.lml(r))));
    let f_del = &mut ws.a_del;
    f_del.clear();
    f_del.extend(std::iter::once(0.0).chain((1..=nf).map(|r| ws.ftab.del[fv.node(r).idx()])));
    let g_ins = &mut ws.b_ins;
    g_ins.clear();
    g_ins.extend(std::iter::once(0.0).chain((1..=ng).map(|r| ws.gtab.ins[gv.node(r).idx()])));

    let f_kr = &mut ws.keyroots_a;
    fv.keyroots_into(f_kr);
    let g_kr = &mut ws.keyroots_b;
    gv.keyroots_into(g_kr);

    let mut subproblems = 0u64;
    let mut abandoned = false;
    // Keyroots are ascending with the subtree root last, so the root pair
    // (the lone full sheet, `l_i = l_j = 1`) is processed last — the only
    // sheet whose td writes nobody reads, hence the only one that may be
    // abandoned midway.
    let last_i = *f_kr.last().expect("trees are non-empty");
    let last_j = *g_kr.last().expect("trees are non-empty");

    'sheets: for &i in f_kr.iter() {
        let li = f_lml[i as usize];
        for &j in g_kr.iter() {
            let lj = g_lml[j as usize];
            let final_sheet = i == last_i && j == last_j;
            let cols = (j - lj + 1) as i64;
            let at = |x: u32, y: u32| (x as usize) * stride + y as usize;

            fd[at(li - 1, lj - 1)] = 0.0;
            // Top row (empty F-prefix): in-band up to y' = bi, then one
            // +∞ sentinel so the next row's delete read stays fenced.
            let hi0 = cols.min(bi);
            for yp in 1..=hi0 {
                let y = lj - 1 + yp as u32;
                fd[at(li - 1, y)] = fd[at(li - 1, y - 1)] + g_ins[y as usize];
            }
            if hi0 < cols {
                fd[at(li - 1, lj + hi0 as u32)] = f64::INFINITY;
            }

            for x in li..=i {
                let xp = (x - li + 1) as i64;
                let lo = (xp - bd).max(0);
                if lo > cols {
                    // This row (and every later one: `lo` is monotone) is
                    // entirely out of band; the sheet corner stays +∞.
                    break;
                }
                let hi = (xp + bi).min(cols);
                let lx = f_lml[x as usize];
                let dx = f_del[x as usize];
                // The row's augmented minimum (final sheet only): a lower
                // bound on any full distance routed through this row.
                let mut row_pot = f64::INFINITY;
                if lo == 0 {
                    // Left column (empty G-prefix) is still in band.
                    let v = fd[at(x - 1, lj - 1)] + dx;
                    fd[at(x, lj - 1)] = v;
                    if final_sheet {
                        row_pot = v + completion(nf - x, ng, min_del, min_ins);
                    }
                } else {
                    // +∞ sentinel just left of the band: the first in-band
                    // cell's insert read must not see a stale value.
                    fd[at(x, lj - 1 + lo as u32 - 1)] = f64::INFINITY;
                }
                let y0 = lo.max(1);
                for yp in y0..=hi {
                    let y = lj - 1 + yp as u32;
                    let ly = g_lml[y as usize];
                    let del = fd[at(x - 1, y)] + dx;
                    let ins = fd[at(x, y - 1)] + g_ins[y as usize];
                    let v = if lx == li && ly == lj {
                        // Both prefixes are complete subtrees: rename case.
                        let ren = fd[at(x - 1, y - 1)]
                            + cm.rename(f.label(fv.node(x)), g.label(gv.node(y)));
                        let best = del.min(ins).min(ren);
                        td[at(x, y)] = best;
                        best
                    } else {
                        // Match the complete subtrees at x and y. The jump
                        // source can sit far outside the band — fence it
                        // explicitly instead of reading a stale cell.
                        let jx = (lx - li) as i64;
                        let jy = (ly - lj) as i64;
                        let m = if jx - jy <= bd && jy - jx <= bi {
                            fd[at(lx - 1, ly - 1)] + td[at(x, y)]
                        } else {
                            f64::INFINITY
                        };
                        del.min(ins).min(m)
                    };
                    fd[at(x, y)] = v;
                    subproblems += 1;
                    if final_sheet {
                        let c = completion(nf - x, ng - y, min_del, min_ins);
                        row_pot = row_pot.min(v + c);
                    }
                }
                if hi < cols {
                    // +∞ sentinel just right of the band, for the next
                    // row's delete read.
                    fd[at(x, lj + hi as u32)] = f64::INFINITY;
                }
                if final_sheet && row_pot > tau {
                    // Every way of completing a ≤ τ mapping leaves a cell
                    // with `fd + comp ≤ τ` in every row; this row has none,
                    // so the distance exceeds the budget — abandon.
                    abandoned = true;
                    break 'sheets;
                }
            }
        }
    }

    let corner = td[(nf as usize) * stride + ng as usize];
    ws.note_run(subproblems);
    let result = if !abandoned && corner <= tau {
        // In-budget cells are exact (see the module docs).
        BoundedResult::Exact(corner)
    } else {
        BoundedResult::Exceeds(lb_size.max(tau))
    };
    BoundedRun {
        result,
        subproblems,
        early_exit: abandoned,
    }
}

/// Cheapest possible cost of aligning `rem_f` remaining F-nodes with
/// `rem_g` remaining G-nodes: the surplus side has no partners.
#[inline]
fn completion(rem_f: u32, rem_g: u32, min_del: f64, min_ins: f64) -> f64 {
    if rem_f >= rem_g {
        (rem_f - rem_g) as f64 * min_del
    } else {
        (rem_g - rem_f) as f64 * min_ins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{PerLabelCost, UnitCost};
    use crate::zs::zs_distance;
    use rted_tree::parse_bracket;

    fn check_both_sides<C: CostModel<String>>(a: &str, b: &str, cm: &C) {
        let f = parse_bracket(a).unwrap();
        let g = parse_bracket(b).unwrap();
        let d = zs_distance(&f, &g, cm);
        let mut ws = Workspace::new();
        for tau in [
            0.0,
            d * 0.5,
            (d - 0.25).max(0.0),
            d,
            d + 0.25,
            d * 2.0 + 1.0,
            f64::INFINITY,
        ] {
            match ted_at_most(&f, &g, cm, tau, &mut ws) {
                BoundedResult::Exact(got) => {
                    assert!(d <= tau, "{a} vs {b}: Exact below budget {tau} but d={d}");
                    assert_eq!(got, d, "{a} vs {b} at tau={tau}");
                }
                BoundedResult::Exceeds(lb) => {
                    assert!(d > tau, "{a} vs {b}: Exceeds at tau={tau} but d={d}");
                    assert!(lb <= d, "{a} vs {b}: bound {lb} above true distance {d}");
                }
            }
        }
    }

    #[test]
    fn agrees_with_exact_on_fixed_cases() {
        let cases = [
            ("{a}", "{a}"),
            ("{a}", "{b}"),
            ("{a{b}{c}}", "{a{b}}"),
            ("{a{b{c}{d}}}", "{a{c}{d}}"),
            ("{r{a}{b}}", "{r{b}{a}}"),
            ("{a{b}{c{d}}}", "{a{b{d}}{c}}"),
            ("{a{b{c}{d}}{e}}", "{x{y}{z{w{q}}}}"),
            ("{A{C}{B{G}{E{F}}{D}}}", "{A{B{D}{E{F}}}{C{G}}}"),
            ("{a{a}{a}{a}}", "{a{a{a}}}"),
            ("{a{b{c{d{e}}}}}", "{a{b}{c}{d}{e}}"),
        ];
        for (a, b) in cases {
            check_both_sides(a, b, &UnitCost);
            check_both_sides(a, b, &PerLabelCost::new(1.5, 2.0, 0.75));
        }
    }

    #[test]
    fn size_gap_rejects_without_dp() {
        let f = parse_bracket("{a{b}{c}{d}{e}{f}{g}{h}}").unwrap();
        let g = parse_bracket("{a}").unwrap();
        let mut ws = Workspace::new();
        let run = ted_at_most_run(&f, &g, &UnitCost, 3.0, &mut ws);
        assert_eq!(run.result, BoundedResult::Exceeds(7.0));
        assert_eq!(run.subproblems, 0);
        assert!(run.early_exit);
    }

    #[test]
    fn negative_budget_always_exceeds() {
        let f = parse_bracket("{a}").unwrap();
        let run = ted_at_most_run(&f, &f, &UnitCost, -1.0, &mut Workspace::new());
        assert_eq!(run.result, BoundedResult::Exceeds(0.0));
        assert!(run.early_exit);
    }

    #[test]
    fn infinite_budget_is_exact() {
        let f = parse_bracket("{a{b{c}{d}}{e}}").unwrap();
        let g = parse_bracket("{x{y}{z{w{q}}}}").unwrap();
        let d = zs_distance(&f, &g, &UnitCost);
        let run = ted_at_most_run(&f, &g, &UnitCost, f64::INFINITY, &mut Workspace::new());
        assert_eq!(run.result, BoundedResult::Exact(d));
        assert!(!run.early_exit);
    }

    #[test]
    fn tight_budget_at_exact_distance_is_exact() {
        let f = parse_bracket("{a{b}{c{d}}}").unwrap();
        let g = parse_bracket("{a{b{d}}{c}}").unwrap();
        let d = zs_distance(&f, &g, &UnitCost);
        let res = ted_at_most(&f, &g, &UnitCost, d, &mut Workspace::new());
        assert_eq!(res, BoundedResult::Exact(d));
    }

    #[test]
    fn equal_size_distant_pair_abandons_early() {
        // Same sizes (no size pre-bound), totally different labels: the
        // final-sheet frontier should fire well before the corner.
        let f = parse_bracket("{a{a{a}{a}}{a{a}{a}}{a{a}{a}}}").unwrap();
        let g = parse_bracket("{z{z{z}{z}}{z{z}{z}}{z{z}{z}}}").unwrap();
        let d = zs_distance(&f, &g, &UnitCost);
        let mut ws = Workspace::new();
        let run = ted_at_most_run(&f, &g, &UnitCost, 1.0, &mut ws);
        match run.result {
            BoundedResult::Exceeds(lb) => assert!(lb <= d),
            other => panic!("expected Exceeds, got {other:?}"),
        }
        assert!(run.early_exit, "frontier should abandon this pair");
        let full = ted_at_most_run(&f, &g, &UnitCost, f64::INFINITY, &mut ws);
        assert!(
            run.subproblems < full.subproblems,
            "abandoned run must do less work ({} vs {})",
            run.subproblems,
            full.subproblems
        );
    }

    #[test]
    fn zero_rename_cost_keeps_band_sound() {
        // Free renames: distances can be far below the unit band's guess.
        let cm = PerLabelCost::new(1.0, 1.0, 0.0);
        check_both_sides("{a{b}{c{d}}}", "{x{y{z}}{w}}", &cm);
    }
}
