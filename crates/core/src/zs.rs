//! The classic Zhang–Shasha algorithm (SIAM J. Comput. 1989) — the paper's
//! `Zhang-L` baseline — and its mirrored variant `Zhang-R`.
//!
//! Zhang–Shasha is the GTED instance whose strategy maps every subtree pair
//! to the left (resp. right) root-leaf path of the first tree. This
//! standalone implementation hard-codes that strategy the way the paper's
//! optimized baseline does: one keyroot DP per pair of keyroots. It is used
//! both as a baseline in the benchmarks and as a trusted second
//! implementation in the test suite (validated against the recursive
//! reference, then used to validate GTED on larger inputs).

use crate::cost::CostModel;
use crate::view::SubtreeView;
use crate::workspace::Workspace;
use rted_tree::Tree;

/// Result of a Zhang–Shasha run.
#[derive(Debug, Clone)]
pub struct ZsResult {
    /// The tree edit distance.
    pub distance: f64,
    /// Number of relevant subproblems computed (forest-pair DP cells).
    pub subproblems: u64,
    /// `(n_F + 1) × (n_G + 1)` matrix of subtree distances in **view-local**
    /// ranks: `td[x * (n_G + 1) + y]` is the distance between the subtrees
    /// rooted at local ranks `x` and `y` (1-based; row/column 0 unused).
    pub td: Vec<f64>,
}

impl ZsResult {
    /// Distance between the subtrees rooted at local ranks `x` and `y`.
    #[inline]
    pub fn subtree_distance(&self, x: u32, y: u32, ng: u32) -> f64 {
        self.td[(x * (ng + 1) + y) as usize]
    }
}

/// Runs Zhang–Shasha with left paths (`right = false`, the classic
/// algorithm) or right paths (`right = true`, its mirror).
pub fn zhang_shasha<L, C: CostModel<L>>(f: &Tree<L>, g: &Tree<L>, cm: &C, right: bool) -> ZsResult {
    let mut ws = Workspace::new();
    let (distance, subproblems) = zhang_shasha_in(f, g, cm, right, &mut ws);
    ZsResult {
        distance,
        subproblems,
        td: std::mem::take(&mut ws.d),
    }
}

/// The Zhang–Shasha kernel drawing all buffers from `ws` (allocation-free
/// once the workspace is warm). The subtree-distance matrix is left in
/// `ws.d` in the `(n_F + 1) × (n_G + 1)` view-local layout of [`ZsResult`].
pub(crate) fn zhang_shasha_in<L, C: CostModel<L>>(
    f: &Tree<L>,
    g: &Tree<L>,
    cm: &C,
    right: bool,
    ws: &mut Workspace,
) -> (f64, u64) {
    let fv = SubtreeView::new(f, f.root(), right);
    let gv = SubtreeView::new(g, g.root(), right);
    ws.ftab.rebuild(f, cm);
    ws.gtab.rebuild(g, cm);

    let nf = fv.n;
    let ng = gv.n;
    let stride = (ng + 1) as usize;
    let td = &mut ws.d;
    td.clear();
    td.resize((nf as usize + 1) * stride, 0.0);
    let fd = &mut ws.fd;
    fd.clear();
    fd.resize((nf as usize + 1) * stride, 0.0);
    let cand = &mut ws.cand;
    cand.clear();
    cand.resize(stride, 0.0);
    let mut subproblems = 0u64;

    // Precompute per-rank data to keep the inner loop tight.
    let f_lml = &mut ws.a_lml;
    f_lml.clear();
    f_lml.extend(std::iter::once(0).chain((1..=nf).map(|r| fv.lml(r))));
    let g_lml = &mut ws.b_lml;
    g_lml.clear();
    g_lml.extend(std::iter::once(0).chain((1..=ng).map(|r| gv.lml(r))));
    let f_del = &mut ws.a_del;
    f_del.clear();
    f_del.extend(std::iter::once(0.0).chain((1..=nf).map(|r| ws.ftab.del[fv.node(r).idx()])));
    let g_ins = &mut ws.b_ins;
    g_ins.clear();
    g_ins.extend(std::iter::once(0.0).chain((1..=ng).map(|r| ws.gtab.ins[gv.node(r).idx()])));

    let f_kr = &mut ws.keyroots_a;
    fv.keyroots_into(f_kr);
    let g_kr = &mut ws.keyroots_b;
    gv.keyroots_into(g_kr);

    for &i in f_kr.iter() {
        let li = f_lml[i as usize];
        for &j in g_kr.iter() {
            let lj = g_lml[j as usize];
            subproblems += (i - li + 1) as u64 * (j - lj + 1) as u64;
            // Forest distances over prefixes [li..x] × [lj..y].
            let at = |x: u32, y: u32| (x as usize) * stride + y as usize;
            fd[at(li - 1, lj - 1)] = 0.0;
            for x in li..=i {
                fd[at(x, lj - 1)] = fd[at(x - 1, lj - 1)] + f_del[x as usize];
            }
            for y in lj..=j {
                fd[at(li - 1, y)] = fd[at(li - 1, y - 1)] + g_ins[y as usize];
            }
            for x in li..=i {
                let lx = f_lml[x as usize];
                let dx = f_del[x as usize];
                let xi = (x as usize) * stride;
                // Two-pass row: all delete/rename/jump candidates read rows
                // `< x` only, so pass 1 streams them into `cand` as pure
                // min/add work over the contiguous previous row; pass 2 is
                // the one loop-carried dependence — the insert chain. The
                // min is associative, so cell values are bit-identical to
                // the fused loop's.
                let (before, cur) = fd.split_at_mut(xi);
                let cur = &mut cur[..stride];
                let prev = &before[xi - stride..];
                if lx == li {
                    // Keyroot-eligible row: rename where the G-prefix is a
                    // complete subtree, jump elsewhere.
                    for y in lj..=j {
                        let ly = g_lml[y as usize];
                        let t = if ly == lj {
                            prev[y as usize - 1]
                                + cm.rename(f.label(fv.node(x)), g.label(gv.node(y)))
                        } else {
                            before[(lx as usize - 1) * stride + ly as usize - 1]
                                + td[xi + y as usize]
                        };
                        cand[y as usize] = (prev[y as usize] + dx).min(t);
                    }
                } else {
                    // Match the complete subtrees at x and y.
                    for y in lj..=j {
                        let ly = g_lml[y as usize];
                        let m = before[(lx as usize - 1) * stride + ly as usize - 1]
                            + td[xi + y as usize];
                        cand[y as usize] = (prev[y as usize] + dx).min(m);
                    }
                }
                let mut run = cur[lj as usize - 1];
                for y in lj..=j {
                    let v = cand[y as usize].min(run + g_ins[y as usize]);
                    cur[y as usize] = v;
                    run = v;
                }
                if lx == li {
                    // Both prefixes were complete subtrees: record the
                    // subtree distances.
                    for y in lj..=j {
                        if g_lml[y as usize] == lj {
                            td[xi + y as usize] = cur[y as usize];
                        }
                    }
                }
            }
        }
    }

    (td[(nf as usize) * stride + ng as usize], subproblems)
}

/// Convenience wrapper: the Zhang–Shasha (left) distance.
pub fn zs_distance<L, C: CostModel<L>>(f: &Tree<L>, g: &Tree<L>, cm: &C) -> f64 {
    zhang_shasha(f, g, cm, false).distance
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{PerLabelCost, UnitCost};
    use crate::reference::reference_ted;
    use rted_tree::parse_bracket;

    fn zs(a: &str, b: &str) -> f64 {
        let f = parse_bracket(a).unwrap();
        let g = parse_bracket(b).unwrap();
        zhang_shasha(&f, &g, &UnitCost, false).distance
    }

    #[test]
    fn basic_distances() {
        assert_eq!(zs("{a}", "{a}"), 0.0);
        assert_eq!(zs("{a}", "{b}"), 1.0);
        assert_eq!(zs("{a{b}{c}}", "{a{b}}"), 1.0);
        assert_eq!(zs("{a{b{c}{d}}}", "{a{c}{d}}"), 1.0);
        assert_eq!(zs("{r{a}{b}}", "{r{b}{a}}"), 2.0);
    }

    #[test]
    fn left_and_right_agree() {
        let cases = [
            ("{a{b}{c{d}}}", "{a{b{d}}{c}}"),
            ("{a{b{c}{d}}{e}}", "{x{y}{z{w{q}}}}"),
            ("{A{C}{B{G}{E{F}}{D}}}", "{A{B{D}{E{F}}}{C{G}}}"),
        ];
        for (a, b) in cases {
            let f = parse_bracket(a).unwrap();
            let g = parse_bracket(b).unwrap();
            let l = zhang_shasha(&f, &g, &UnitCost, false).distance;
            let r = zhang_shasha(&f, &g, &UnitCost, true).distance;
            assert_eq!(l, r, "{a} vs {b}");
        }
    }

    #[test]
    fn matches_reference_on_fixed_cases() {
        let cases = [
            ("{a{b}{c{d}}}", "{a{b{d}}{c}}"),
            ("{a{b{c}{d}}{e}}", "{x{y}{z{w{q}}}}"),
            ("{a{a}{a}{a}}", "{a{a{a}}}"),
            ("{r{a{x}}{b}}", "{r{a}{b{x}}}"),
            ("{A{C}{B{G}{E{F}}{D}}}", "{B{G}{E{F}}{D}}"),
        ];
        for (a, b) in cases {
            let f = parse_bracket(a).unwrap();
            let g = parse_bracket(b).unwrap();
            let want = reference_ted(&f, &g, &UnitCost);
            assert_eq!(
                zhang_shasha(&f, &g, &UnitCost, false).distance,
                want,
                "{a} {b}"
            );
            assert_eq!(
                zhang_shasha(&f, &g, &UnitCost, true).distance,
                want,
                "{a} {b}"
            );
        }
    }

    #[test]
    fn weighted_costs_match_reference() {
        let cm = PerLabelCost::new(1.5, 2.0, 0.75);
        let f = parse_bracket("{a{b{c}}{d}}").unwrap();
        let g = parse_bracket("{a{x}{d{c}}}").unwrap();
        let want = reference_ted(&f, &g, &cm);
        assert_eq!(zhang_shasha(&f, &g, &cm, false).distance, want);
        assert_eq!(zhang_shasha(&f, &g, &cm, true).distance, want);
    }

    #[test]
    fn subproblem_count_matches_keyroot_formula() {
        // #subproblems = |F(F,ΓL)| × |F(G,ΓL)| for the left variant.
        use rted_tree::counts::DecompCounts;
        let f = parse_bracket("{a{b{c}{d}}{e}}").unwrap();
        let g = parse_bracket("{A{C}{B{G}{E{F}}{D}}}").unwrap();
        let cf = DecompCounts::new(&f);
        let cg = DecompCounts::new(&g);
        let run = zhang_shasha(&f, &g, &UnitCost, false);
        assert_eq!(run.subproblems, cf.left_of(f.root()) * cg.left_of(g.root()));
        let run_r = zhang_shasha(&f, &g, &UnitCost, true);
        assert_eq!(
            run_r.subproblems,
            cf.right_of(f.root()) * cg.right_of(g.root())
        );
    }

    #[test]
    fn td_matrix_contains_subtree_distances() {
        let f = parse_bracket("{a{b{c}}{d}}").unwrap();
        let g = parse_bracket("{a{b}{d{c}}}").unwrap();
        let run = zhang_shasha(&f, &g, &UnitCost, false);
        // Left view local rank = postorder id + 1; check every subtree pair
        // against the reference.
        for v in f.nodes() {
            for w in g.nodes() {
                let sf = f.subtree(v);
                let sg = g.subtree(w);
                let want = reference_ted(&sf, &sg, &UnitCost);
                let got = run.subtree_distance(v.0 + 1, w.0 + 1, g.len() as u32);
                assert_eq!(got, want, "subtrees {v} {w}");
            }
        }
    }
}
