//! Serialized pq-gram profiles: a structure-sensitive lower bound on the
//! tree edit distance.
//!
//! §7 of the paper points at gram-based filters (pq-grams, binary
//! branches) as the strong structure-sensitive bounds for similarity
//! joins. The classic pq-gram profile of Augsten et al. — label tuples of
//! `p` ancestors and `q` consecutive children — yields an excellent
//! *approximate* distance, but a single delete of a high-fanout node can
//! perturb arbitrarily many of those grams, so no constant-factor lower
//! bound on unit-cost TED exists for it. This module therefore implements
//! the **serialized** variant, which does carry a soundness proof:
//!
//! * every tree edit operation (delete / insert / rename of one node)
//!   changes the tree's **preorder** label sequence by exactly one string
//!   edit of the same kind, and likewise its **postorder** sequence — a
//!   deleted node's children splice in place, preserving the relative
//!   order of every other node — so the unit string edit distance of
//!   either serialization lower-bounds TED;
//! * one string edit changes at most `w` of a sequence's length-`w` grams
//!   (the grams overlapping the edited position), so the multiset
//!   symmetric difference `Δ` of two gram profiles satisfies
//!   `Δ ≤ 2·w·SED`, i.e. `SED ≥ ⌈Δ / 2w⌉`.
//!
//! Chaining the two: with grams of length `p` over the preorder
//! serialization and length `q` over the postorder serialization,
//!
//! ```text
//! TED(F, G)  ≥  max( ⌈Δ_pre / 2p⌉ , ⌈Δ_post / 2q⌉ )
//! ```
//!
//! for every cost model charging ≥ 1 per delete/insert and ≥ 1 per rename
//! of distinct labels. The two serializations are complementary: preorder
//! grams capture ancestor-before-descendant context, postorder grams
//! capture descendant-before-ancestor context, so trees that agree on one
//! traversal but differ structurally rarely agree on both.
//!
//! A profile is a pair of **hashed gram multisets** kept sorted, built in
//! a single postorder pass (the tree's precomputed preorder ranks place
//! each label hash into the preorder sequence on the fly) with all
//! intermediate storage drawn from a reusable [`PqScratch`] arena, so
//! corpus builds allocate per profile only the two gram vectors that the
//! sketch must own anyway. Sequences are padded with `w − 1` sentinel
//! hashes on each side (the `#` padding of string q-grams), which keeps
//! the per-edit gram bound exact at the sequence ends. Hash collisions can
//! only merge distinct grams — shrinking the symmetric difference — so
//! they weaken the bound but can never make it unsound.

use rted_tree::Tree;
use std::hash::{Hash, Hasher};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Padding hash standing in for the `#` sentinel outside the sequence.
/// Not derived from any label's bytes; a colliding label would only
/// weaken the bound (see the module docs), never break soundness.
const SENTINEL: u64 = 0x5155_4147_4d41_5250; // "QUAGMARP"

/// A streaming FNV-1a 64 [`Hasher`], used so label hashing is
/// deterministic and stable (the std `DefaultHasher` is free to change
/// across releases, which would silently invalidate persisted profiles).
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// The hash of one label. `&str`, `String` and every integer type hash
/// identically to themselves across the owned and borrowed corpus paths.
fn label_hash<L: Hash + ?Sized>(label: &L) -> u64 {
    let mut h = Fnv1a(FNV_OFFSET);
    label.hash(&mut h);
    h.finish()
}

/// Order-sensitive combination of a window of label hashes into one gram
/// hash (an FNV-style fold over the 64-bit words).
fn gram_hash(window: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    for &x in window {
        h = (h ^ x).wrapping_mul(FNV_PRIME);
    }
    h
}

/// The gram lengths of a profile: `p` for the preorder serialization,
/// `q` for the postorder serialization. Both are clamped to ≥ 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PqParams {
    /// Gram length over the preorder label sequence.
    pub p: u32,
    /// Gram length over the postorder label sequence.
    pub q: u32,
}

impl Default for PqParams {
    /// The conventional pq-gram default `(2, 3)`.
    fn default() -> Self {
        PqParams { p: 2, q: 3 }
    }
}

impl PqParams {
    /// Params with both lengths clamped to ≥ 1.
    pub fn new(p: u32, q: u32) -> Self {
        PqParams {
            p: p.max(1),
            q: q.max(1),
        }
    }
}

/// Reusable scratch for profile construction: per-node label hashes and
/// the padded serialization buffer. One scratch serves arbitrarily many
/// trees (corpus builds reuse a single instance across all inserts).
#[derive(Debug, Default)]
pub struct PqScratch {
    /// Label hash per node, indexed by postorder id.
    hashes: Vec<u64>,
    /// Label hashes permuted into preorder.
    pre_hashes: Vec<u64>,
    /// The padded serialization currently being grammed.
    seq: Vec<u64>,
}

/// A tree's serialized pq-gram profile: two sorted multisets of hashed
/// grams (preorder grams of length `p`, postorder grams of length `q`).
///
/// Stored inside [`TreeSketch`](crate::bounds::TreeSketch), persisted by
/// the corpus format (version 2), and compared pairwise by
/// [`lower_bound`](Self::lower_bound) in O(n) via a sorted merge.
#[derive(Debug, Clone, PartialEq)]
pub struct PqGramProfile {
    params: PqParams,
    /// Sorted gram hashes of the padded preorder sequence (`n + p − 1`).
    pre: Vec<u64>,
    /// Sorted gram hashes of the padded postorder sequence (`n + q − 1`).
    post: Vec<u64>,
}

impl PqGramProfile {
    /// The profile of `tree` under the default [`PqParams`].
    pub fn new<L: Hash>(tree: &Tree<L>) -> Self {
        Self::with_params(tree, PqParams::default())
    }

    /// The profile of `tree` under explicit params.
    pub fn with_params<L: Hash>(tree: &Tree<L>, params: PqParams) -> Self {
        Self::compute_in(tree, params, &mut PqScratch::default())
    }

    /// [`with_params`](Self::with_params) drawing intermediate storage
    /// from `scratch` — a single postorder pass hashes every label once,
    /// placing it into both serializations via the tree's precomputed
    /// preorder ranks; only the two gram vectors the profile owns are
    /// allocated.
    pub fn compute_in<L: Hash>(tree: &Tree<L>, params: PqParams, scratch: &mut PqScratch) -> Self {
        let n = tree.len();
        scratch.hashes.clear();
        scratch.hashes.resize(n, 0);
        scratch.pre_hashes.clear();
        scratch.pre_hashes.resize(n, 0);
        // One pass: hash each label once, placing it into the postorder
        // sequence directly and into the preorder sequence through the
        // tree's precomputed preorder rank.
        for v in tree.nodes() {
            let h = label_hash(tree.label(v));
            scratch.hashes[v.idx()] = h;
            scratch.pre_hashes[tree.preorder(v) as usize] = h;
        }
        let post = grams_of(&scratch.hashes, params.q, &mut scratch.seq);
        let pre = grams_of(&scratch.pre_hashes, params.p, &mut scratch.seq);
        PqGramProfile { params, pre, post }
    }

    /// Reassembles a profile from previously computed parts (the corpus
    /// persistence layer). The gram vectors must be sorted — stored
    /// profiles are trusted like every other sketch field (see the
    /// persistence trust model); an unsorted forgery degrades the bound's
    /// value, which the loader guards by re-sorting.
    pub fn from_parts(params: PqParams, mut pre: Vec<u64>, mut post: Vec<u64>) -> Self {
        // Sorting a sorted vec is O(n): cheap insurance that the merge in
        // `symmetric_difference` always sees its precondition.
        if !is_sorted(&pre) {
            pre.sort_unstable();
        }
        if !is_sorted(&post) {
            post.sort_unstable();
        }
        PqGramProfile { params, pre, post }
    }

    /// The gram lengths this profile was built with.
    #[inline]
    pub fn params(&self) -> PqParams {
        self.params
    }

    /// The sorted preorder gram hashes (`n + p − 1` entries).
    #[inline]
    pub fn pre_grams(&self) -> &[u64] {
        &self.pre
    }

    /// The sorted postorder gram hashes (`n + q − 1` entries).
    #[inline]
    pub fn post_grams(&self) -> &[u64] {
        &self.post
    }

    /// Multiset symmetric-difference sizes `(Δ_pre, Δ_post)` against
    /// `other`, by sorted merge in O(n).
    pub fn symmetric_difference(&self, other: &PqGramProfile) -> (usize, usize) {
        (
            symdiff(&self.pre, &other.pre),
            symdiff(&self.post, &other.post),
        )
    }

    /// The sound lower bound `max(⌈Δ_pre/2p⌉, ⌈Δ_post/2q⌉)` on the edit
    /// distance between the profiled trees — see the module docs for the
    /// proof. Profiles built under different params are incomparable and
    /// bound nothing (returns 0).
    pub fn lower_bound(&self, other: &PqGramProfile) -> f64 {
        if self.params != other.params {
            return 0.0;
        }
        let (dp, dq) = self.symmetric_difference(other);
        let pre = (dp as f64 / (2.0 * self.params.p as f64)).ceil();
        let post = (dq as f64 / (2.0 * self.params.q as f64)).ceil();
        pre.max(post)
    }
}

fn is_sorted(xs: &[u64]) -> bool {
    xs.windows(2).all(|w| w[0] <= w[1])
}

/// Sorted gram hashes of `hashes` padded with `w − 1` sentinels on each
/// side, using `seq` as the reusable padding buffer.
fn grams_of(hashes: &[u64], w: u32, seq: &mut Vec<u64>) -> Vec<u64> {
    let w = w.max(1) as usize;
    let pad = w - 1;
    seq.clear();
    seq.resize(hashes.len() + 2 * pad, SENTINEL);
    seq[pad..pad + hashes.len()].copy_from_slice(hashes);
    let mut grams: Vec<u64> = seq.windows(w).map(gram_hash).collect();
    grams.sort_unstable();
    grams
}

/// Size of the multiset symmetric difference of two sorted slices.
fn symdiff(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut diff) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                i += 1;
                diff += 1;
            }
            std::cmp::Ordering::Greater => {
                j += 1;
                diff += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    diff + (a.len() - i) + (b.len() - j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rted::ted;
    use rted_tree::parse_bracket;

    fn t(s: &str) -> Tree<String> {
        parse_bracket(s).unwrap()
    }

    #[test]
    fn profile_sizes_match_the_serializations() {
        let tree = t("{a{b}{c{d}}}");
        for (p, q) in [(1, 1), (2, 3), (3, 2), (4, 4)] {
            let prof = PqGramProfile::with_params(&tree, PqParams::new(p, q));
            assert_eq!(prof.pre_grams().len(), tree.len() + p as usize - 1);
            assert_eq!(prof.post_grams().len(), tree.len() + q as usize - 1);
            assert!(is_sorted(prof.pre_grams()));
            assert!(is_sorted(prof.post_grams()));
        }
    }

    #[test]
    fn identical_trees_have_zero_difference() {
        let a = t("{a{b{c}{d}}{e}}");
        let b = t("{a{b{c}{d}}{e}}");
        let (pa, pb) = (PqGramProfile::new(&a), PqGramProfile::new(&b));
        assert_eq!(pa.symmetric_difference(&pb), (0, 0));
        assert_eq!(pa.lower_bound(&pb), 0.0);
        assert_eq!(pa, pb);
    }

    #[test]
    fn profiles_are_deterministic_and_scratch_independent() {
        let tree = t("{r{a{b}}{c}{a{b}}}");
        let fresh = PqGramProfile::new(&tree);
        let mut scratch = PqScratch::default();
        // A dirty scratch from another tree must not leak into the result.
        let _ = PqGramProfile::compute_in(&t("{x{y{z}}}"), PqParams::default(), &mut scratch);
        let reused = PqGramProfile::compute_in(&tree, PqParams::default(), &mut scratch);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn mismatched_params_bound_nothing() {
        let tree = t("{a{b}{c}}");
        let a = PqGramProfile::with_params(&tree, PqParams::new(2, 3));
        let b = PqGramProfile::with_params(&t("{x{y{z{w}}}}"), PqParams::new(3, 2));
        assert_eq!(a.lower_bound(&b), 0.0);
    }

    #[test]
    fn bound_is_sound_on_samples() {
        let cases = [
            ("{a}", "{a}"),
            ("{a{b}{c}}", "{x{y}{z}}"),
            ("{a{b{c{d}}}}", "{a{b}{c}{d}}"),
            ("{a{a}{a}{a}{a}}", "{a{a{a{a{a}}}}}"),
            ("{a{b}}", "{c{d{e}{f}}{g}}"),
            ("{a{b{c}{d}}{e}}", "{a{e}{b{c}{d}}}"),
        ];
        for (x, y) in cases {
            let (f, g) = (t(x), t(y));
            let d = ted(&f, &g);
            for params in [
                PqParams::new(1, 1),
                PqParams::new(2, 3),
                PqParams::new(3, 3),
            ] {
                let lb = PqGramProfile::with_params(&f, params)
                    .lower_bound(&PqGramProfile::with_params(&g, params));
                assert!(lb <= d, "{x} vs {y} ({params:?}): lb {lb} > ted {d}");
            }
        }
    }

    #[test]
    fn bound_sees_structure_the_histogram_misses() {
        // Same label multiset, same size/depth/leaf profile family —
        // only the arrangement differs. The serialized grams pick up the
        // reordering.
        let f = t("{r{a{b}}{c{d}}}");
        let g = t("{r{a{d}}{c{b}}}");
        let (pf, pg) = (PqGramProfile::new(&f), PqGramProfile::new(&g));
        let lb = pf.lower_bound(&pg);
        assert!(lb >= 1.0, "expected a positive bound, got {lb}");
        assert!(lb <= ted(&f, &g));
    }

    #[test]
    fn from_parts_roundtrips_and_repairs_order() {
        let prof = PqGramProfile::new(&t("{a{b}{c{d}}}"));
        let rebuilt = PqGramProfile::from_parts(
            prof.params(),
            prof.pre_grams().to_vec(),
            prof.post_grams().to_vec(),
        );
        assert_eq!(prof, rebuilt);
        // Reversed input is re-sorted, keeping the merge precondition.
        let mut rev = prof.pre_grams().to_vec();
        rev.reverse();
        let repaired = PqGramProfile::from_parts(prof.params(), rev, prof.post_grams().to_vec());
        assert_eq!(prof, repaired);
    }
}
