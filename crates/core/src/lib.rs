//! Tree edit distance algorithms from *RTED: A Robust Algorithm for the Tree
//! Edit Distance* (Pawlik & Augsten, PVLDB 5(4), 2011).
//!
//! The crate implements the paper's complete algorithmic stack:
//!
//! * [`cost`] — edit cost models ([`UnitCost`], [`PerLabelCost`], or any
//!   [`CostModel`] implementation);
//! * [`reference`](crate::reference) — the recursive formula of Fig. 2,
//!   memoized on explicit forests (the correctness oracle of the tests);
//! * [`zs`] — the classic Zhang–Shasha algorithm (left and right variants),
//!   i.e. the paper's optimized `Zhang-L` / `Zhang-R` baselines;
//! * [`strategy`] — the cost formula of Fig. 5 and `OptStrategy`
//!   (Algorithm 2), generalized over a pluggable chooser so the same O(n²)
//!   engine also computes the exact subproblem counts of every fixed
//!   competitor strategy (Zhang-L/R, Klein-H, Demaine-H);
//! * [`baseline`] — the O(n³) baseline strategy algorithm of §6.1, kept as
//!   an executable specification for Algorithm 2;
//! * [`gted`] — the GTED executor (Algorithm 1) running any LRH strategy in
//!   O(n²) space, built on three single-path functions: `∆L`/`∆R`
//!   (keyroot DPs) and `∆I` (the Demaine-style heavy-path DP over the
//!   canonical forest encoding);
//! * [`rted`] — the RTED facade: optimal strategy + GTED, with run
//!   statistics, and the [`Algorithm`] enum running all five algorithms of
//!   the paper's evaluation uniformly.
//!
//! # Example
//!
//! ```
//! use rted_core::{ted, Algorithm, UnitCost};
//! use rted_tree::parse_bracket;
//!
//! let f = parse_bracket("{a{b}{c{d}}}").unwrap();
//! let g = parse_bracket("{a{b{d}}{c}}").unwrap();
//! assert_eq!(ted(&f, &g), 2.0);
//!
//! // All algorithms agree on the distance; they differ in how many
//! // subproblems they compute.
//! for alg in Algorithm::ALL {
//!     let run = alg.run(&f, &g, &UnitCost);
//!     assert_eq!(run.distance, 2.0);
//! }
//! ```

pub mod baseline;
pub mod bounded;
pub mod bounds;
pub mod cost;
pub mod gted;
pub mod mapping;
pub mod pqgram;
pub mod reference;
pub mod rted;
pub mod strategy;
mod view;
pub mod workspace;
pub mod zs;

mod spf_i;
mod spf_lr;

pub use bounded::{ted_at_most, ted_at_most_run, BoundedResult, BoundedRun};
pub use bounds::{LowerBound, TreeSketch};
pub use cost::{CostModel, PerLabelCost, UnitCost};
pub use gted::{ExecStats, Executor};
pub use mapping::{edit_mapping, edit_mapping_in, EditMapping, EditOp, EditScript, ScriptOp};
pub use pqgram::{PqGramProfile, PqParams, PqScratch};
pub use rted::{ted, ted_with, Algorithm, Rted, RunStats};
pub use strategy::{
    compute_strategy_in, optimal_strategy, strategy_cost, Chooser, DemaineChooser, FixedChooser,
    OptimalChooser, PathChoice, Side, Strategy, StrategyProvider, SubsetChooser,
};
pub use workspace::{AlgorithmCost, Workspace, WorkspaceStats};
