//! Single-path function `∆I` (§4.3): the Demaine-style "compute period" DP
//! for arbitrary (in GTED: heavy) root-leaf paths, in O(n²) space.
//!
//! `∆I(F, G, γ, D)` computes δ(F_v, G_w) for every node `v` on the path `γ`
//! of `F` and every `w ∈ G`, computing exactly `|F| × |A(G)|` relevant
//! subproblems (Lemma 4), where `A(G)` is the full decomposition of `G`.
//!
//! # How it works
//!
//! **B-side (G) forests.** Every forest of the full decomposition `A(G)` is
//! `S(a, b) = {x : lpost(x) ≤ a ∧ rpost(x) ≤ b}` for a unique canonical
//! pair, where `lpost`/`rpost` are the (mirror) postorder ranks local to the
//! subtree (see `rted_tree::decompose::canonical_pairs`). Removing the
//! rightmost root maps `(a, b)` to set-index `(a − 1, b)`; removing the
//! rightmost root's subtree to `(a − size, b)`; symmetrically on the left
//! with `b`. Any set index maps back to a value by **rank**: the forest
//! `{lpost ≤ a', rpost ≤ b}` is determined within family `b` by its member
//! count `cnt(a', b)`, so DP rows store one value per canonical pair and
//! resolve set indices through the `cnt` table.
//!
//! **A-side (F) forests.** The relevant subforests of `F` w.r.t. `γ` form a
//! linear sequence — one node removed per step (Lemma 2) — grouped into
//! periods along the path. Walking the path bottom-up, each period turns
//! the row of δ(children-forest(p), ·) into δ(subtree(p), ·) ("stage T"),
//! then re-adds the right siblings of the path child one node at a time
//! ("stage R", removal direction *right* since the leftmost root is the
//! path node), then the left siblings ("stage L", direction *left*).
//!
//! Within stage R the B-side recursion never leaves family `b` while the
//! forest has ≥ 2 roots; the only cross-family dependency is through
//! single-tree forests, whose "root removed" values are kept in a `kids`
//! side table (δ(row forest, children-forest(x)) for every `x ∈ G`). This
//! is what bounds memory by O(|F|·|G| + |A(G)|) while still computing each
//! relevant subproblem exactly once.
//!
//! # Memory discipline
//!
//! Every buffer — the B-side tables, the two DP row slots, and the stage
//! scratch — lives in the executor's [`Workspace`](crate::Workspace) and is
//! only ever length-reset: rows rotate between the `current` and `spare`
//! slots by `mem::swap`, so a whole `∆I` invocation allocates nothing once
//! the workspace is warm.

#![allow(clippy::needless_range_loop, clippy::needless_late_init)]
// The DP kernels below are written as explicit index loops over
// canonical-pair arrays; iterator rewrites obscure the index
// arithmetic the comments reference.

use crate::cost::CostModel;
use crate::gted::Executor;
use crate::workspace::{RlScratch, Row};
use rted_tree::{NodeId, Tree};

/// Precomputed B-side (the non-decomposed tree) canonical-forest tables.
///
/// One instance lives in the [`Workspace`](crate::Workspace) and is rebuilt
/// in place per `∆I` invocation.
#[derive(Debug, Default)]
pub(crate) struct BSide {
    m: usize,
    /// Global node id by local lpost rank (index 1..=m).
    node_l: Vec<u32>,
    /// Global node id by local rpost rank.
    node_r: Vec<u32>,
    /// Local rpost of the node with local lpost `a`.
    rb: Vec<u32>,
    /// Local lpost of the node with local rpost `b`.
    lb: Vec<u32>,
    /// Subtree size by local lpost / local rpost.
    sz_l: Vec<u32>,
    sz_r: Vec<u32>,
    /// `cnt[a * (m+1) + b]` = |{x : lpost(x) ≤ a ∧ rpost(x) ≤ b}|.
    cnt: Vec<u32>,
    /// Canonical lpost members per rpost family `b`, ascending, concatenated.
    mem_a: Vec<u32>,
    mem_a_off: Vec<usize>,
    /// Canonical rpost members per lpost family `a`, ascending, concatenated.
    mem_b: Vec<u32>,
    mem_b_off: Vec<usize>,
    /// Row-vector offset of family `b` (canonical pairs laid out family by
    /// family); `start_b[m+1]` = |A(G)|.
    start_b: Vec<usize>,
    /// Insert cost by local lpost / local rpost (orientation applied).
    ins_l: Vec<f64>,
    ins_r: Vec<f64>,
    /// Subtree insert-cost sums by local lpost.
    sub_ins_l: Vec<f64>,
}

impl BSide {
    /// Rebuilds the tables for the B-side subtree at `b_root`, reusing all
    /// capacity.
    fn rebuild<L, C: CostModel<L>>(
        &mut self,
        exec: &Executor<'_, L, C>,
        b_root: NodeId,
        swapped: bool,
    ) {
        let tb: &Tree<L> = exec.tree_b(swapped);
        let m = tb.size(b_root) as usize;
        self.m = m;
        let first_l = tb.subtree_first(b_root).0;
        let first_r = tb.rpost(b_root) + 1 - m as u32;

        self.node_l.clear();
        self.node_l.resize(m + 1, 0);
        self.node_r.clear();
        self.node_r.resize(m + 1, 0);
        self.rb.clear();
        self.rb.resize(m + 1, 0);
        self.lb.clear();
        self.lb.resize(m + 1, 0);
        self.sz_l.clear();
        self.sz_l.resize(m + 1, 0);
        self.sz_r.clear();
        self.sz_r.resize(m + 1, 0);
        self.ins_l.clear();
        self.ins_l.resize(m + 1, 0.0);
        self.ins_r.clear();
        self.ins_r.resize(m + 1, 0.0);
        self.sub_ins_l.clear();
        self.sub_ins_l.resize(m + 1, 0.0);
        for a in 1..=m as u32 {
            let v = NodeId(first_l + a - 1);
            let b = tb.rpost(v) - first_r + 1;
            self.node_l[a as usize] = v.0;
            self.rb[a as usize] = b;
            self.node_r[b as usize] = v.0;
            self.lb[b as usize] = a;
            self.sz_l[a as usize] = tb.size(v);
            self.sz_r[b as usize] = tb.size(v);
            self.ins_l[a as usize] = exec.ins_b(v, swapped);
            self.ins_r[b as usize] = exec.ins_b(v, swapped);
            self.sub_ins_l[a as usize] = exec.sub_ins_b(v, swapped);
        }

        // Membership counts.
        let stride = m + 1;
        self.cnt.clear();
        self.cnt.resize(stride * stride, 0);
        for a in 1..=m {
            let r = self.rb[a] as usize;
            for b in 0..=m {
                self.cnt[a * stride + b] = self.cnt[(a - 1) * stride + b] + u32::from(r <= b);
            }
        }

        // Canonical member lists and family offsets.
        self.mem_a.clear();
        self.mem_a_off.clear();
        self.mem_a_off.resize(m + 2, 0);
        self.start_b.clear();
        self.start_b.resize(m + 2, 0);
        for b in 1..=m {
            self.mem_a_off[b] = self.mem_a.len();
            self.start_b[b] = self.start_b[b - 1]
                + if b >= 2 {
                    self.cnt[m * stride + b - 1] as usize - self.sz_r[b - 1] as usize + 1
                } else {
                    0
                };
            for a in self.lb[b] as usize..=m {
                if self.rb[a] as usize <= b {
                    self.mem_a.push(a as u32);
                }
            }
        }
        self.mem_a_off[m + 1] = self.mem_a.len();
        self.start_b[m + 1] =
            self.start_b[m] + self.cnt[m * stride + m] as usize - self.sz_r[m] as usize + 1;

        self.mem_b.clear();
        self.mem_b_off.clear();
        self.mem_b_off.resize(m + 2, 0);
        for a in 1..=m {
            self.mem_b_off[a] = self.mem_b.len();
            for b in self.rb[a] as usize..=m {
                if self.lb[b] as usize <= a {
                    self.mem_b.push(b as u32);
                }
            }
        }
        self.mem_b_off[m + 1] = self.mem_b.len();
    }

    #[inline]
    fn cnt_at(&self, a: u32, b: u32) -> u32 {
        self.cnt[a as usize * (self.m + 1) + b as usize]
    }

    /// Total number of canonical pairs, |A(G)|.
    #[inline]
    fn total(&self) -> usize {
        self.start_b[self.m + 1]
    }

    /// Position of canonical pair `(a, b)` in a row vector.
    #[inline]
    fn pos(&self, a: u32, b: u32) -> usize {
        debug_assert!(
            self.rb[a as usize] <= b && self.lb[b as usize] <= a,
            "({a},{b}) not canonical"
        );
        // Rank of the first canonical member of family b is |subtree(y)|.
        self.start_b[b as usize] + (self.cnt_at(a, b) - self.sz_r[b as usize]) as usize
    }

    /// Canonical members `a` of family `b`.
    #[inline]
    fn fam_a(&self, b: u32) -> &[u32] {
        &self.mem_a[self.mem_a_off[b as usize]..self.mem_a_off[b as usize + 1]]
    }

    /// Canonical members `b` of family `a`.
    #[inline]
    fn fam_b(&self, a: u32) -> &[u32] {
        &self.mem_b[self.mem_b_off[a as usize]..self.mem_b_off[a as usize + 1]]
    }
}

impl Row {
    #[inline]
    fn get(&self, bs: &BSide, a: u32, b: u32) -> f64 {
        self.vals[bs.pos(a, b)]
    }

    /// δ(row forest, children forest of node at local lpost `a`): for
    /// leaves the children forest is empty.
    #[inline]
    fn kid(&self, bs: &BSide, a: u32) -> f64 {
        if bs.sz_l[a as usize] == 1 {
            self.col0
        } else {
            self.kids[a as usize]
        }
    }
}

/// Marks `val` as the children-forest value of a parent node if the
/// canonical pair `(a, b)` is exactly `(lpost(x) − 1, rpost(x) − 1)` for
/// some node `x` (whose children the forest then is).
#[inline]
fn note_kid(bs: &BSide, kids: &mut [f64], a: u32, b: u32, val: f64) {
    let pa = a as usize + 1;
    if pa <= bs.m && bs.rb[pa] == b + 1 {
        kids[pa] = val;
    }
}

/// δ(∅, ·) row: pure insertion costs, written into `out`.
fn empty_a_row_into(bs: &BSide, out: &mut Row) {
    out.vals.clear();
    out.kids.clear();
    out.kids.resize(bs.m + 1, 0.0);
    out.col0 = 0.0;
    for b in 1..=bs.m as u32 {
        let mut sum = 0.0f64;
        for (i, &a) in bs.fam_a(b).iter().enumerate() {
            if i == 0 {
                sum = bs.sub_ins_l[a as usize]; // S = subtree(y)
            } else {
                sum += bs.ins_l[a as usize];
            }
            out.vals.push(sum);
            note_kid(bs, &mut out.kids, a, b, sum);
        }
    }
    // Children-forest insert sums are also directly available.
    for a in 1..=bs.m {
        if bs.sz_l[a] > 1 {
            out.kids[a] = bs.sub_ins_l[a] - bs.ins_l[a];
        }
    }
}

/// Stage T: from δ(children-forest(p), ·) compute δ(subtree(p), ·), writing
/// the new tree-tree distances δ(subtree(p), subtree(w)) into `D` and the
/// resulting row into `out`.
fn stage_t_into<L, C: CostModel<L>>(
    exec: &mut Executor<'_, L, C>,
    bs: &BSide,
    p: NodeId,
    top_prev: &Row,
    out: &mut Row,
    swapped: bool,
) {
    let del_p = exec.del_a(p, swapped);
    out.vals.clear();
    out.kids.clear();
    out.kids.resize(bs.m + 1, 0.0);
    out.col0 = exec.sub_del_a(p, swapped);
    let col0 = out.col0;
    let mut cells = 0u64;
    for b in 1..=bs.m as u32 {
        let mut sum_ins = 0.0f64;
        let fam = bs.fam_a(b);
        for (i, &a) in fam.iter().enumerate() {
            let x = NodeId(bs.node_l[a as usize]);
            let val;
            if i == 0 {
                // S = subtree(x): both sides are trees — delete / insert /
                // rename (Fig. 2, tree-tree case).
                sum_ins = bs.sub_ins_l[a as usize];
                let s_minus_w = if bs.sz_l[a as usize] == 1 {
                    col0
                } else {
                    out.kids[a as usize]
                };
                val = (top_prev.get(bs, a, b) + del_p)
                    .min(s_minus_w + bs.ins_l[a as usize])
                    .min(top_prev.kid(bs, a) + exec.ren_ab(p, x, swapped));
                exec.d_set(p, x, swapped, val);
            } else {
                // S has ≥ 2 roots; direction right, w = rightmost root = x.
                sum_ins += bs.ins_l[a as usize];
                let prev_col = out.vals[out.vals.len() - 1]; // set (a−1, b)
                let subtree_x = out.vals[bs.pos(a, bs.rb[a as usize])];
                val = (top_prev.get(bs, a, b) + del_p)
                    .min(prev_col + bs.ins_l[a as usize])
                    .min(subtree_x + (sum_ins - bs.sub_ins_l[a as usize]));
            }
            out.vals.push(val);
            note_kid(bs, &mut out.kids, a, b, val);
            cells += 1;
        }
    }
    exec.stats.subproblems += cells;
}

/// Stage R (`left == false`): re-add the right siblings of the path child
/// one node at a time (removal direction right). Stage L (`left == true`):
/// re-add the left siblings (direction left). `add` lists the nodes in
/// re-addition order: ascending postorder for stage R, ascending mirror
/// postorder for stage L — each added node becomes the new extreme root.
/// The resulting top row is written into `out`.
#[allow(clippy::too_many_arguments)]
fn stage_rl_into<L, C: CostModel<L>>(
    exec: &mut Executor<'_, L, C>,
    bs: &BSide,
    base: &Row,
    add: &[NodeId],
    swapped: bool,
    left: bool,
    scratch: &mut RlScratch,
    out: &mut Row,
) {
    let ta = exec.tree_a(swapped);
    let r_rows = add.len();
    let m = bs.m;

    // δ(F-row, ∅) per row.
    let col0 = &mut scratch.col0;
    col0.clear();
    col0.push(base.col0);
    for (j, &v) in add.iter().enumerate() {
        let next = col0[j] + exec.del_a(v, swapped);
        col0.push(next);
    }
    // Per-row children-forest values; row 0 comes from the base row.
    let kstride = m + 1;
    let kids = &mut scratch.kids;
    kids.clear();
    kids.resize((r_rows + 1) * kstride, 0.0);
    kids[..kstride].copy_from_slice(&base.kids);

    scratch.sz_v.clear();
    scratch.sz_v.extend(add.iter().map(|&v| ta.size(v)));
    scratch.del_v.clear();
    for &v in add {
        let d = exec.del_a(v, swapped);
        scratch.del_v.push(d);
    }
    let sz_v = &scratch.sz_v;
    let del_v = &scratch.del_v;

    // Stage L writes output positions out of order and needs the full row
    // pre-sized; stage R appends families contiguously (family order is
    // position order), skipping the zero prefill.
    out.vals.clear();
    if left {
        out.vals.resize(bs.total(), 0.0);
    }
    // Stage buffer: (r_rows + 1) × (max family width).
    let mut wmax = 0usize;
    for fam_idx in 1..=m as u32 {
        let w = if left {
            bs.fam_b(fam_idx).len()
        } else {
            bs.fam_a(fam_idx).len()
        };
        wmax = wmax.max(w);
    }
    let stage = &mut scratch.stage;
    stage.clear();
    stage.resize((r_rows + 1) * wmax, 0.0);
    let mut cells = 0u64;

    for fam_idx in 1..=m as u32 {
        let fam: &[u32] = if left {
            bs.fam_b(fam_idx)
        } else {
            bs.fam_a(fam_idx)
        };
        let width = fam.len();
        if width == 0 {
            continue;
        }
        // Rank of the first canonical member (size of the anchoring
        // subtree), used to convert member counts to column indices.
        let fam_low = if left {
            bs.sz_l[fam_idx as usize]
        } else {
            bs.sz_r[fam_idx as usize]
        };
        // Row 0 = base row restricted to this family, and the per-member
        // tables: every `if left` selection below depends only on the
        // member, not the row, so it is resolved once per family instead
        // of once per cell.
        let m_wnode = &mut scratch.m_wnode;
        let m_insw = &mut scratch.m_insw;
        let m_jump = &mut scratch.m_jump;
        let m_kid = &mut scratch.m_kid;
        m_wnode.clear();
        m_insw.clear();
        m_jump.clear();
        m_kid.clear();
        // ci == 0 anchors the family: its `S − w` term reads the
        // children-forest slot (or the empty column when w is a leaf).
        let mut szw0 = 0u32;
        let mut kidx0 = 0usize;
        for (ci, &mb) in fam.iter().enumerate() {
            let (a, b) = if left { (fam_idx, mb) } else { (mb, fam_idx) };
            stage[ci] = base.get(bs, a, b);
            // w = extreme root of S on the removal side.
            let (w_node, szw) = if left {
                (bs.node_r[b as usize], bs.sz_r[b as usize])
            } else {
                (bs.node_l[a as usize], bs.sz_l[a as usize])
            };
            m_wnode.push(w_node);
            m_insw.push(if left {
                bs.ins_r[b as usize]
            } else {
                bs.ins_l[a as usize]
            });
            if ci == 0 {
                szw0 = szw;
                kidx0 = if left {
                    a as usize
                } else {
                    bs.lb[b as usize] as usize
                };
                m_jump.push(0);
            } else {
                let jump_rank = if left {
                    bs.cnt_at(a, b - szw)
                } else {
                    bs.cnt_at(a - szw, b)
                };
                debug_assert!(jump_rank >= fam_low);
                m_jump.push(jump_rank - fam_low);
            }
            let pa = a as usize + 1;
            m_kid.push(if pa <= bs.m && bs.rb[pa] == b + 1 {
                pa as u32
            } else {
                u32::MAX
            });
        }
        let cand = &mut scratch.cand;
        cand.clear();
        cand.resize(width, 0.0);
        for j in 1..=r_rows {
            let v = add[j - 1];
            let szv = sz_v[j - 1] as usize;
            let dv = del_v[j - 1];
            let jrow = j * wmax;
            let prow = (j - 1) * wmax;
            // Bulk delete stream: a pure min/add pass over the contiguous
            // previous stage row, hoisted out of the sequential loop.
            for (ci, c) in cand.iter_mut().enumerate() {
                *c = stage[prow + ci] + dv;
            }
            // ci == 0: S is the single subtree anchoring this family.
            {
                let s_minus_w = if szw0 == 1 {
                    col0[j]
                } else {
                    kids[j * kstride + kidx0]
                };
                let val = cand[0]
                    .min(s_minus_w + m_insw[0])
                    .min(exec.d_get(v, NodeId(m_wnode[0]), swapped) + col0[j - szv]);
                stage[jrow] = val;
                if m_kid[0] != u32::MAX {
                    kids[j * kstride + m_kid[0] as usize] = val;
                }
            }
            for ci in 1..width {
                // S has ≥ 2 roots: remove from this stage's direction.
                let jump = stage[(j - szv) * wmax + m_jump[ci] as usize];
                let val = cand[ci]
                    .min(stage[jrow + ci - 1] + m_insw[ci])
                    .min(exec.d_get(v, NodeId(m_wnode[ci]), swapped) + jump);
                stage[jrow + ci] = val;
                if m_kid[ci] != u32::MAX {
                    kids[j * kstride + m_kid[ci] as usize] = val;
                }
            }
            cells += width as u64;
        }
        // Capture the stage's top row into the output row.
        let top = r_rows * wmax;
        if left {
            for (ci, &mb) in fam.iter().enumerate() {
                out.vals[bs.pos(fam_idx, mb)] = stage[top + ci];
            }
        } else {
            out.vals.extend_from_slice(&stage[top..top + width]);
        }
    }
    exec.stats.subproblems += cells;

    out.kids.clear();
    out.kids.extend_from_slice(&kids[r_rows * kstride..]);
    out.col0 = col0[r_rows];
}

/// Runs `∆I` for the A-side subtree at `a_root` decomposed along `path`
/// (root-leaf, `path[0] == a_root`) against the B-side subtree at `b_root`.
pub(crate) fn run<L, C: CostModel<L>>(
    exec: &mut Executor<'_, L, C>,
    a_root: NodeId,
    b_root: NodeId,
    path: &[NodeId],
    swapped: bool,
) {
    debug_assert_eq!(
        path.first(),
        Some(&a_root),
        "path must start at the subtree root"
    );
    // Take all scratch from the workspace up front; the two row slots
    // rotate by swap so no stage ever allocates.
    let (mut bs, mut cur, mut spare, mut scratch, mut children, mut add_r, mut add_l) = {
        let ws = exec.scratch();
        (
            std::mem::take(&mut ws.bside),
            std::mem::take(&mut ws.row_cur),
            std::mem::take(&mut ws.row_spare),
            std::mem::take(&mut ws.rl),
            std::mem::take(&mut ws.children),
            std::mem::take(&mut ws.add_r),
            std::mem::take(&mut ws.add_l),
        )
    };
    bs.rebuild(exec, b_root, swapped);
    let ta = exec.tree_a(swapped);

    // `cur` plays the role of δ(previous top row, ·), starting at δ(∅, ·).
    empty_a_row_into(&bs, &mut cur);
    for i in (0..path.len()).rev() {
        let p = path[i];
        stage_t_into(exec, &bs, p, &cur, &mut spare, swapped);
        std::mem::swap(&mut cur, &mut spare);
        if i == 0 {
            break;
        }
        let parent = path[i - 1];
        children.clear();
        children.extend(ta.children(parent));
        let t = children.iter().position(|&c| c == p).expect("path child");

        // Right siblings' nodes in ascending postorder (stage R re-adds the
        // rightmost-removed nodes in reverse removal order).
        add_r.clear();
        for &c in &children[t + 1..] {
            add_r.extend(ta.subtree_nodes(c));
        }
        // Left siblings' nodes in ascending mirror postorder.
        add_l.clear();
        for &c in children[..t].iter().rev() {
            let first_r = ta.rpost(c) + 1 - ta.size(c);
            for r in first_r..=ta.rpost(c) {
                add_l.push(ta.by_rpost(r));
            }
        }

        if !add_r.is_empty() {
            stage_rl_into(
                exec,
                &bs,
                &cur,
                &add_r,
                swapped,
                false,
                &mut scratch,
                &mut spare,
            );
            std::mem::swap(&mut cur, &mut spare);
        }
        if !add_l.is_empty() {
            stage_rl_into(
                exec,
                &bs,
                &cur,
                &add_l,
                swapped,
                true,
                &mut scratch,
                &mut spare,
            );
            std::mem::swap(&mut cur, &mut spare);
        }
    }

    let ws = exec.scratch();
    ws.bside = bs;
    ws.row_cur = cur;
    ws.row_spare = spare;
    ws.rl = scratch;
    ws.children = children;
    ws.add_r = add_r;
    ws.add_l = add_l;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UnitCost;
    use rted_tree::counts::DecompCounts;
    use rted_tree::parse_bracket;

    /// Builds the B-side tables for `s` without leaking: the throwaway
    /// executor only borrows the locals for the duration of the build
    /// (`BSide` owns all its arrays).
    fn bside_for(s: &str) -> (BSide, rted_tree::Tree<String>) {
        let g = parse_bracket(s).unwrap();
        let f = parse_bracket("{x}").unwrap();
        let mut bs = BSide::default();
        let exec = Executor::new(&f, &g, &UnitCost);
        bs.rebuild(&exec, g.root(), false);
        drop(exec);
        (bs, g)
    }

    #[test]
    fn canonical_pair_total_matches_lemma1() {
        for s in [
            "{a}",
            "{a{b}}",
            "{a{b}{c}}",
            "{A{C}{B{G}{E{F}}{D}}}",
            "{a{b{c{d{e}}}}}",
            "{a{b}{c}{d}{e}}",
        ] {
            let (bs, g) = bside_for(s);
            let counts = DecompCounts::new(&g);
            assert_eq!(bs.total() as u64, counts.full_of(g.root()), "{s}");
            // Family lists partition the canonical pairs.
            let fam_total: usize = (1..=bs.m as u32).map(|b| bs.fam_a(b).len()).sum();
            assert_eq!(fam_total, bs.total(), "{s}");
            let fam_total_b: usize = (1..=bs.m as u32).map(|a| bs.fam_b(a).len()).sum();
            assert_eq!(fam_total_b, bs.total(), "{s}");
        }
    }

    #[test]
    fn positions_are_a_bijection() {
        let (bs, _) = bside_for("{A{C}{B{G}{E{F}}{D}}}");
        let mut seen = vec![false; bs.total()];
        for b in 1..=bs.m as u32 {
            for &a in bs.fam_a(b) {
                let p = bs.pos(a, b);
                assert!(!seen[p], "position {p} reused at ({a},{b})");
                seen[p] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn lpost_rpost_tables_consistent() {
        let (bs, g) = bside_for("{a{b{c}{d}}{e{f}}}");
        for a in 1..=bs.m {
            let b = bs.rb[a] as usize;
            assert_eq!(bs.lb[b], a as u32);
            assert_eq!(bs.node_l[a], bs.node_r[b]);
            assert_eq!(bs.sz_l[a], bs.sz_r[b]);
        }
        // cnt grows to m at (m, m).
        assert_eq!(bs.cnt_at(bs.m as u32, bs.m as u32) as usize, bs.m);
        // cnt of a subtree's canonical pair equals its size.
        for a in 1..=bs.m as u32 {
            let b = bs.rb[a as usize];
            assert_eq!(bs.cnt_at(a, b), bs.sz_l[a as usize]);
        }
        drop(g);
    }

    #[test]
    fn empty_row_is_insert_costs() {
        let (bs, g) = bside_for("{a{b}{c{d}}}");
        let mut row = Row::default();
        empty_a_row_into(&bs, &mut row);
        assert_eq!(row.col0, 0.0);
        // Full-tree pair: inserting everything costs n under unit costs.
        let a = bs.m as u32;
        let b = bs.rb[a as usize];
        assert_eq!(row.get(&bs, a, b), g.len() as f64);
        // Children forest of the root costs n - 1.
        assert_eq!(row.kid(&bs, a), (g.len() - 1) as f64);
    }

    #[test]
    fn rebuild_reuses_capacity_across_sizes() {
        // A big build followed by a small one must leave consistent small
        // tables (stale tails from the big build are invisible).
        let g_big = parse_bracket("{A{C}{B{G}{E{F}}{D}}}").unwrap();
        let g_small = parse_bracket("{a{b}}").unwrap();
        let f = parse_bracket("{x}").unwrap();
        let mut bs = BSide::default();
        let exec = Executor::new(&f, &g_big, &UnitCost);
        bs.rebuild(&exec, g_big.root(), false);
        drop(exec);
        let big_total = bs.total();
        let exec = Executor::new(&f, &g_small, &UnitCost);
        bs.rebuild(&exec, g_small.root(), false);
        drop(exec);
        assert_eq!(bs.m, 2);
        assert_eq!(
            bs.total() as u64,
            DecompCounts::new(&g_small).full_of(g_small.root())
        );
        assert!(bs.total() < big_total);
    }
}
