//! RTED — the robust tree edit distance algorithm (§6), plus the
//! [`Algorithm`] enum running every competitor of the paper's evaluation
//! through a uniform interface.
//!
//! RTED computes the optimal LRH strategy with Algorithm 2, then runs GTED
//! under it. Its subproblem count is, by construction, at most that of any
//! LRH competitor (Zhang-L/R, Klein-H, Demaine-H) on every input.

use crate::cost::CostModel;
use crate::gted::{ExecStats, Executor};
use crate::strategy::{
    compute_strategy_in, DemaineChooser, DemaineHeavy, FixedChooser, OptimalChooser, PathChoice,
    Side,
};
use crate::workspace::Workspace;
use crate::zs::zhang_shasha_in;
use rted_tree::{PathKind, Tree};
use std::time::{Duration, Instant};

/// Statistics of one distance computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// The tree edit distance.
    pub distance: f64,
    /// Relevant subproblems actually computed (instrumented DP cells).
    pub subproblems: u64,
    /// Time spent computing the strategy (zero for fixed-strategy
    /// algorithms, which need no strategy phase).
    pub strategy_time: Duration,
    /// Time spent in the distance computation proper.
    pub distance_time: Duration,
    /// Executor counters (zeroed for the standalone Zhang–Shasha runs).
    pub exec: ExecStats,
}

/// The five algorithms evaluated in §8 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Zhang & Shasha's algorithm: always decomposes with left paths
    /// (classic keyroot implementation, hard-coded strategy).
    ZhangL,
    /// The symmetric right-path variant of Zhang & Shasha.
    ZhangR,
    /// Klein's algorithm: heavy paths, always in the left-hand tree.
    KleinH,
    /// Demaine et al.: heavy paths in the larger tree (worst-case optimal).
    DemaineH,
    /// RTED: the optimal LRH strategy computed by Algorithm 2, run by GTED.
    Rted,
}

impl Algorithm {
    /// All five, in the paper's presentation order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::ZhangL,
        Algorithm::ZhangR,
        Algorithm::KleinH,
        Algorithm::DemaineH,
        Algorithm::Rted,
    ];

    /// The display name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::ZhangL => "Zhang-L",
            Algorithm::ZhangR => "Zhang-R",
            Algorithm::KleinH => "Klein-H",
            Algorithm::DemaineH => "Demaine-H",
            Algorithm::Rted => "RTED",
        }
    }

    /// Runs the algorithm on `(f, g)` under `cm`, with timing and counters.
    ///
    /// Self-contained (all scratch is freshly allocated and freed); batch
    /// callers should use [`Algorithm::run_in`] with a reused
    /// [`Workspace`] instead.
    pub fn run<L, C: CostModel<L>>(self, f: &Tree<L>, g: &Tree<L>, cm: &C) -> RunStats {
        self.run_in(f, g, cm, &mut Workspace::new())
    }

    /// [`Algorithm::run`] drawing every buffer — distance matrix, cost
    /// tables, strategy rows and single-path-function scratch — from `ws`.
    ///
    /// Results are bit-identical to [`Algorithm::run`]. Once the
    /// workspace has served a pair of these (or larger) sizes, the whole
    /// computation performs **zero** heap allocations.
    pub fn run_in<L, C: CostModel<L>>(
        self,
        f: &Tree<L>,
        g: &Tree<L>,
        cm: &C,
        ws: &mut Workspace,
    ) -> RunStats {
        let stats = match self {
            Algorithm::ZhangL | Algorithm::ZhangR => {
                let start = Instant::now();
                let (distance, subproblems) =
                    zhang_shasha_in(f, g, cm, self == Algorithm::ZhangR, ws);
                RunStats {
                    distance,
                    subproblems,
                    strategy_time: Duration::ZERO,
                    distance_time: start.elapsed(),
                    exec: ExecStats::default(),
                }
            }
            Algorithm::KleinH => run_gted_in(
                f,
                g,
                cm,
                &PathChoice {
                    side: Side::F,
                    kind: PathKind::Heavy,
                },
                ws,
            ),
            Algorithm::DemaineH => run_gted_in(f, g, cm, &DemaineHeavy, ws),
            Algorithm::Rted => {
                let t0 = Instant::now();
                let strategy = compute_strategy_in(f, g, &OptimalChooser, ws);
                let strategy_time = t0.elapsed();
                let mut stats = run_gted_in(f, g, cm, &strategy, ws);
                stats.strategy_time = strategy_time;
                // Hand the choice matrix back so the next run reuses it.
                ws.recycle(strategy);
                stats
            }
        };
        ws.note_run(stats.subproblems);
        let spent = stats.strategy_time + stats.distance_time;
        ws.note_algorithm(
            self.portfolio_index(),
            stats.subproblems,
            u64::try_from(spent.as_nanos()).unwrap_or(u64::MAX),
        );
        stats
    }

    /// This algorithm's position in [`Algorithm::ALL`] — the slot its
    /// observed costs accumulate under in
    /// [`Workspace::algorithm_costs`](crate::Workspace::algorithm_costs).
    pub fn portfolio_index(self) -> usize {
        match self {
            Algorithm::ZhangL => 0,
            Algorithm::ZhangR => 1,
            Algorithm::KleinH => 2,
            Algorithm::DemaineH => 3,
            Algorithm::Rted => 4,
        }
    }

    /// The exact number of relevant subproblems this algorithm computes on
    /// `(f, g)`, via the Fig.-5 cost formula (no distance computation).
    pub fn predicted_subproblems<L>(self, f: &Tree<L>, g: &Tree<L>) -> u64 {
        self.predicted_subproblems_in(f, g, &mut Workspace::new())
    }

    /// [`Algorithm::predicted_subproblems`] drawing scratch from `ws`, for
    /// batch callers evaluating the cost formula over many pairs.
    pub fn predicted_subproblems_in<L>(self, f: &Tree<L>, g: &Tree<L>, ws: &mut Workspace) -> u64 {
        let strategy = match self {
            Algorithm::ZhangL => compute_strategy_in(
                f,
                g,
                &FixedChooser(PathChoice {
                    side: Side::F,
                    kind: PathKind::Left,
                }),
                ws,
            ),
            Algorithm::ZhangR => compute_strategy_in(
                f,
                g,
                &FixedChooser(PathChoice {
                    side: Side::F,
                    kind: PathKind::Right,
                }),
                ws,
            ),
            Algorithm::KleinH => compute_strategy_in(
                f,
                g,
                &FixedChooser(PathChoice {
                    side: Side::F,
                    kind: PathKind::Heavy,
                }),
                ws,
            ),
            Algorithm::DemaineH => compute_strategy_in(f, g, &DemaineChooser, ws),
            Algorithm::Rted => compute_strategy_in(f, g, &OptimalChooser, ws),
        };
        let cost = strategy.cost;
        ws.recycle(strategy);
        cost
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn run_gted_in<L, C: CostModel<L>, S: crate::strategy::StrategyProvider<L>>(
    f: &Tree<L>,
    g: &Tree<L>,
    cm: &C,
    strategy: &S,
    ws: &mut Workspace,
) -> RunStats {
    let start = Instant::now();
    let mut exec = Executor::with_workspace(f, g, cm, ws);
    let distance = exec.run(strategy);
    RunStats {
        distance,
        subproblems: exec.stats.subproblems,
        strategy_time: Duration::ZERO,
        distance_time: start.elapsed(),
        exec: exec.stats,
    }
}

/// The RTED algorithm bound to a cost model.
///
/// ```
/// use rted_core::{Rted, UnitCost};
/// use rted_tree::parse_bracket;
///
/// let f = parse_bracket("{a{b}{c}}").unwrap();
/// let g = parse_bracket("{a{c}}").unwrap();
/// let rted = Rted::new(UnitCost);
/// let run = rted.distance(&f, &g);
/// assert_eq!(run.distance, 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Rted<C> {
    cm: C,
}

impl<C> Rted<C> {
    /// Binds RTED to a cost model.
    pub fn new(cm: C) -> Self {
        Rted { cm }
    }

    /// Computes the distance and run statistics for `(f, g)`.
    pub fn distance<L>(&self, f: &Tree<L>, g: &Tree<L>) -> RunStats
    where
        C: CostModel<L>,
    {
        Algorithm::Rted.run(f, g, &self.cm)
    }
}

/// The unit-cost tree edit distance computed by RTED.
pub fn ted<L: PartialEq>(f: &Tree<L>, g: &Tree<L>) -> f64 {
    Algorithm::Rted.run(f, g, &crate::cost::UnitCost).distance
}

/// The tree edit distance under a custom cost model, computed by RTED.
pub fn ted_with<L, C: CostModel<L>>(f: &Tree<L>, g: &Tree<L>, cm: &C) -> f64 {
    Algorithm::Rted.run(f, g, cm).distance
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UnitCost;
    use rted_tree::parse_bracket;

    #[test]
    fn all_algorithms_agree() {
        let cases = [
            ("{a{b}{c{d}}}", "{a{b{d}}{c}}"),
            ("{A{C}{B{G}{E{F}}{D}}}", "{A{B{D}{E{F}}}{C{G}}}"),
            ("{a{b{c{d{e}}}}}", "{e{d{c{b{a}}}}}"),
        ];
        for (a, b) in cases {
            let f = parse_bracket(a).unwrap();
            let g = parse_bracket(b).unwrap();
            let runs: Vec<RunStats> = Algorithm::ALL
                .iter()
                .map(|alg| alg.run(&f, &g, &UnitCost))
                .collect();
            for (alg, r) in Algorithm::ALL.iter().zip(&runs) {
                assert_eq!(
                    r.distance, runs[0].distance,
                    "{alg} disagrees on {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn rted_subproblems_minimal() {
        let cases = [
            ("{a{b{c}{d}}{e}}", "{x{y}{z{w{q}}}}"),
            ("{a{b{c{d{e}}}}}", "{a{b}{c}{d}{e}}"),
        ];
        for (a, b) in cases {
            let f = parse_bracket(a).unwrap();
            let g = parse_bracket(b).unwrap();
            let rted = Algorithm::Rted.predicted_subproblems(&f, &g);
            for alg in Algorithm::ALL {
                let p = alg.predicted_subproblems(&f, &g);
                assert!(rted <= p, "{alg}: {p} < RTED {rted} on {a} vs {b}");
            }
        }
    }

    #[test]
    fn measured_matches_predicted_for_every_algorithm() {
        let f = parse_bracket("{a{b{c}{d}}{e{f}{g{h}}}}").unwrap();
        let g = parse_bracket("{A{C}{B{G}{E{F}}{D}}}").unwrap();
        for alg in Algorithm::ALL {
            let run = alg.run(&f, &g, &UnitCost);
            let predicted = alg.predicted_subproblems(&f, &g);
            assert_eq!(run.subproblems, predicted, "{alg}");
        }
    }

    #[test]
    fn ted_helper() {
        let f = parse_bracket("{a{b}{c{d}}}").unwrap();
        let g = parse_bracket("{a{b{d}}{c}}").unwrap();
        assert_eq!(ted(&f, &g), 2.0);
    }
}
