//! Proof of the workspace contract: the **second** computation of a pair
//! through a reused [`Workspace`] performs zero heap allocations.
//!
//! A counting global allocator tallies every `alloc`/`realloc`; the test
//! warms a workspace with one run per (algorithm, pair), snapshots the
//! counter, repeats the exact run, and demands the counter did not move.
//! Kept in its own integration-test binary so the allocator sees only this
//! test's traffic.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOC_CALLS.load(Ordering::SeqCst)
}

use rted_core::{Algorithm, PerLabelCost, UnitCost, Workspace};
use rted_tree::{parse_bracket, Tree};

/// Deterministic mixed-shape tree of roughly `n` nodes: chains, fans and
/// bushy sections so every single-path function (∆L, ∆R, ∆I) runs.
fn mixed_tree(n: usize, salt: u64) -> Tree<String> {
    let mut s = String::from("{r");
    let mut state = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut open = 0usize;
    let mut emitted = 1usize;
    while emitted < n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let roll = (state >> 59) as usize;
        if roll < 5 && open > 0 {
            s.push('}');
            open -= 1;
        } else {
            s.push_str(&format!("{{l{}", roll % 3));
            open += 1;
            emitted += 1;
        }
    }
    for _ in 0..open {
        s.push('}');
    }
    s.push('}');
    parse_bracket(&s).unwrap()
}

#[test]
fn second_run_through_workspace_is_allocation_free() {
    let pairs = [
        (mixed_tree(60, 1), mixed_tree(55, 2)),
        (mixed_tree(25, 3), mixed_tree(70, 4)),
    ];
    let asym = PerLabelCost::new(1.5, 2.0, 0.75);

    let mut ws = Workspace::new();
    for (pi, (f, g)) in pairs.iter().enumerate() {
        for alg in Algorithm::ALL {
            // Warm-up run: buffers grow to this pair's sizes.
            let warm = alg.run_in(f, g, &UnitCost, &mut ws);

            let before = allocations();
            let again = alg.run_in(f, g, &UnitCost, &mut ws);
            let delta = allocations() - before;
            assert_eq!(
                delta, 0,
                "{alg} pair {pi}: second run performed {delta} allocations"
            );
            assert_eq!(again.distance, warm.distance, "{alg} pair {pi}");
            assert_eq!(again.subproblems, warm.subproblems, "{alg} pair {pi}");

            // Also under an asymmetric cost model (different cost tables,
            // same buffers).
            alg.run_in(f, g, &asym, &mut ws);
            let before = allocations();
            alg.run_in(f, g, &asym, &mut ws);
            assert_eq!(
                allocations() - before,
                0,
                "{alg} pair {pi}: asymmetric second run allocated"
            );
        }
    }
}

#[test]
fn warm_bounded_verify_is_allocation_free() {
    // The budgeted kernel draws every buffer from the same pooled
    // workspace, so warm `ted_at_most` calls allocate nothing — in the
    // exact regime, the exceeds regime (frontier abandonment), and the
    // size-reject fast path alike, under both cost models.
    use rted_core::{ted_at_most, BoundedResult};
    let pairs = [
        (mixed_tree(60, 31), mixed_tree(55, 32)),
        (mixed_tree(25, 33), mixed_tree(70, 34)),
    ];
    let asym = PerLabelCost::new(1.5, 2.0, 0.75);

    let mut ws = Workspace::new();
    for (pi, (f, g)) in pairs.iter().enumerate() {
        // Budgets on both sides of the threshold: ∞ (exact), generous,
        // and tight enough to reject.
        let d = match ted_at_most(f, g, &UnitCost, f64::INFINITY, &mut ws) {
            BoundedResult::Exact(d) => d,
            BoundedResult::Exceeds(_) => unreachable!("infinite budget"),
        };
        let budgets = [f64::INFINITY, d + 1.0, d / 2.0, 0.5];
        for &tau in &budgets {
            ted_at_most(f, g, &UnitCost, tau, &mut ws);
            ted_at_most(f, g, &asym, tau, &mut ws);
        }
        let before = allocations();
        for &tau in &budgets {
            let unit = ted_at_most(f, g, &UnitCost, tau, &mut ws);
            if tau >= d {
                assert_eq!(unit, BoundedResult::Exact(d), "pair {pi} tau={tau}");
            }
            ted_at_most(f, g, &asym, tau, &mut ws);
        }
        let delta = allocations() - before;
        assert_eq!(
            delta, 0,
            "pair {pi}: warm bounded verify performed {delta} allocations"
        );
    }
}

#[test]
fn warm_diff_allocates_only_the_output_script() {
    // The diff-pipeline contract: a warm `edit_mapping_in` routes every
    // scratch buffer — keyroot DP tables, per-depth forest-DP sheets,
    // backtrace frame stack — through the workspace, so the only heap
    // allocation left is the returned op vector itself (reserved once at
    // its final capacity, never regrown).
    use rted_core::edit_mapping_in;
    let pairs = [
        (mixed_tree(60, 21), mixed_tree(55, 22)),
        (mixed_tree(25, 23), mixed_tree(70, 24)),
    ];
    let asym = PerLabelCost::new(1.5, 2.0, 0.75);

    let mut ws = Workspace::new();
    for (pi, (f, g)) in pairs.iter().enumerate() {
        let warm = edit_mapping_in(f, g, &UnitCost, &mut ws);

        let before = allocations();
        let again = edit_mapping_in(f, g, &UnitCost, &mut ws);
        let delta = allocations() - before;
        assert!(
            delta <= 1,
            "pair {pi}: warm diff performed {delta} allocations (only the \
             output vector is allowed)"
        );
        assert_eq!(again, warm, "pair {pi}: warm diff changed the mapping");
        drop(again);

        // Same bound under an asymmetric model: different cost tables,
        // same buffers.
        edit_mapping_in(f, g, &asym, &mut ws);
        let before = allocations();
        let m = edit_mapping_in(f, g, &asym, &mut ws);
        let delta = allocations() - before;
        assert!(
            delta <= 1,
            "pair {pi}: asymmetric warm diff performed {delta} allocations"
        );
        drop(m);
    }
}

#[test]
fn strategy_computation_is_allocation_free_when_warm() {
    use rted_core::{compute_strategy_in, OptimalChooser};
    let f = mixed_tree(80, 7);
    let g = mixed_tree(64, 8);
    let mut ws = Workspace::new();
    let s = compute_strategy_in(&f, &g, &OptimalChooser, &mut ws);
    let warm_cost = s.cost;
    ws.recycle(s);

    let before = allocations();
    let s = compute_strategy_in(&f, &g, &OptimalChooser, &mut ws);
    let cost = s.cost;
    ws.recycle(s);
    let delta = allocations() - before;
    assert_eq!(delta, 0, "warm strategy run performed {delta} allocations");
    assert_eq!(cost, warm_cost);
}

#[test]
fn workspace_survives_shrinking_and_growing_pairs() {
    // Alternate small and large pairs; once the workspace has seen both,
    // repeats of either are allocation-free.
    let small = (mixed_tree(12, 11), mixed_tree(9, 12));
    let large = (mixed_tree(90, 13), mixed_tree(85, 14));
    let mut ws = Workspace::new();
    for _ in 0..2 {
        Algorithm::Rted.run_in(&small.0, &small.1, &UnitCost, &mut ws);
        Algorithm::Rted.run_in(&large.0, &large.1, &UnitCost, &mut ws);
    }
    let before = allocations();
    Algorithm::Rted.run_in(&small.0, &small.1, &UnitCost, &mut ws);
    Algorithm::Rted.run_in(&large.0, &large.1, &UnitCost, &mut ws);
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "warm alternating runs performed {delta} allocations"
    );
}

#[test]
fn one_pass_over_a_mixed_workload_reaches_the_allocation_fixed_point() {
    // The serving-layer contract: a worker's workspace sees a mixed bag
    // of pairs once, and every later request — in any order — allocates
    // nothing. This is strictly stronger than repeating one pair: the
    // strategy row pool recycles rows across pairs of different widths,
    // and before rows were kept grown to the high-water width, which
    // under-sized row a node popped depended on acquisition order, so
    // stray reallocations kept firing long after warm-up.
    let trees: Vec<Tree<String>> = (0..8).map(|i| mixed_tree(30 + 5 * i, i as u64)).collect();
    let pairs = [(0usize, 1usize), (2, 5), (6, 3), (7, 4)];
    let mut ws = Workspace::new();
    for &(l, r) in &pairs {
        Algorithm::Rted.run_in(&trees[l], &trees[r], &UnitCost, &mut ws);
    }
    let before = allocations();
    // Several orders, including reversed and interleaved revisits.
    for &(l, r) in pairs.iter().chain(pairs.iter().rev()) {
        Algorithm::Rted.run_in(&trees[l], &trees[r], &UnitCost, &mut ws);
        Algorithm::Rted.run_in(&trees[0], &trees[1], &UnitCost, &mut ws);
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "warm mixed-workload runs performed {delta} allocations"
    );
}
