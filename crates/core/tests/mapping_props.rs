//! Property tests for the edit-mapping pipeline: every extracted mapping
//! must be a *valid* Tai mapping whose cost — recomputed operation by
//! operation — equals the RTED distance for the pair, under both the
//! unit model and an asymmetric per-label model. The workspace-reused
//! extraction must agree with the self-contained one exactly.

use proptest::prelude::*;
use rted_core::{edit_mapping, edit_mapping_in, Algorithm, PerLabelCost, UnitCost, Workspace};
use rted_tree::Tree;

/// Builds a tree from random-attachment choices: node `i` (insertion
/// order, `i ≥ 1`) becomes the next child of node `choices[i-1] % i`.
fn tree_from_choices(labels: &[u8], choices: &[u32]) -> Tree<u8> {
    let n = labels.len();
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 1..n {
        let p = choices[i - 1] % i as u32;
        children[p as usize].push(i as u32);
    }
    let mut post_of = vec![u32::MAX; n];
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        if *i < children[v as usize].len() {
            let c = children[v as usize][*i];
            *i += 1;
            stack.push((c, 0));
        } else {
            post_of[v as usize] = order.len() as u32;
            order.push(v);
            stack.pop();
        }
    }
    let post_labels: Vec<u8> = order.iter().map(|&v| labels[v as usize]).collect();
    let post_children: Vec<Vec<u32>> = order
        .iter()
        .map(|&v| {
            children[v as usize]
                .iter()
                .map(|&c| post_of[c as usize])
                .collect()
        })
        .collect();
    Tree::from_postorder(post_labels, post_children)
}

fn arb_tree(max: usize) -> impl Strategy<Value = Tree<u8>> {
    (1..=max).prop_flat_map(|n| {
        (
            proptest::collection::vec(any::<u32>(), n.max(2) - 1),
            proptest::collection::vec(0u8..3, n),
        )
            .prop_map(move |(choices, labels)| tree_from_choices(&labels, &choices))
    })
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mapping_cost_equals_rted_distance(f in arb_tree(16), g in arb_tree(16)) {
        // Unit model: the script's recomputed cost is the tree edit
        // distance RTED reports — the mapping is an optimality witness.
        let m = edit_mapping(&f, &g, &UnitCost);
        let rted = Algorithm::Rted.run(&f, &g, &UnitCost).distance;
        prop_assert_eq!(m.cost, rted);
        prop_assert_eq!(m.cost_under(&f, &g, &UnitCost), rted);
        prop_assert!(m.validate(&f, &g).is_ok(), "{:?}", m.validate(&f, &g));

        // Asymmetric model (delete ≠ insert ≠ rename): the backtrace must
        // hold for arbitrary float costs, in both operand orders.
        let asym = PerLabelCost::new(1.5, 2.0, 0.75);
        for (a, b) in [(&f, &g), (&g, &f)] {
            let m = edit_mapping(a, b, &asym);
            let rted = Algorithm::Rted.run(a, b, &asym).distance;
            prop_assert!(close(m.cost, rted), "cost {} vs rted {}", m.cost, rted);
            prop_assert!(
                close(m.cost_under(a, b, &asym), rted),
                "recomputed {} vs rted {}",
                m.cost_under(a, b, &asym),
                rted
            );
            prop_assert!(m.validate(a, b).is_ok(), "{:?}", m.validate(a, b));
        }
    }

    #[test]
    fn workspace_reused_mapping_matches_fresh(
        pairs in proptest::collection::vec((arb_tree(12), arb_tree(12)), 2..5)
    ) {
        // One workspace threaded through a size-varying pair sequence:
        // ops and cost must be identical to the throwaway-workspace path,
        // and the resolved script must foot with the mapping counts.
        let asym = PerLabelCost::new(1.5, 2.0, 0.75);
        let mut ws = Workspace::new();
        for (f, g) in &pairs {
            let fresh = edit_mapping(f, g, &UnitCost);
            let reused = edit_mapping_in(f, g, &UnitCost, &mut ws);
            prop_assert_eq!(&reused, &fresh);
            let fresh = edit_mapping(f, g, &asym);
            let reused = edit_mapping_in(f, g, &asym, &mut ws);
            prop_assert_eq!(&reused, &fresh);

            let script = reused.script(f, g);
            prop_assert!(close(script.cost, reused.cost));
            prop_assert_eq!(script.ops.len(), reused.ops.len());
            prop_assert_eq!(
                script.deletes + script.inserts + script.renames + script.keeps,
                script.ops.len()
            );
            prop_assert_eq!(script.deletes, reused.deletions().count());
            prop_assert_eq!(script.inserts, reused.insertions().count());
            prop_assert_eq!(script.renames + script.keeps, reused.pairs().count());
        }
    }
}
