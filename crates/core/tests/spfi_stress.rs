//! Stress tests for the heavy-path single-path function `∆I` — the most
//! intricate component — on shapes that exercise each structural edge case
//! of its period machinery.

use rted_core::strategy::{PathChoice, Side};
use rted_core::zs::zs_distance;
use rted_core::{Executor, UnitCost};
use rted_tree::build::BuildNode;
use rted_tree::{parse_bracket, PathKind, Tree};

/// Runs Klein (all pairs → heavy path of F), the G-side heavy constant
/// strategy, and Demaine against Zhang–Shasha.
fn check_heavy(f: &Tree<String>, g: &Tree<String>, name: &str) {
    let want = zs_distance(f, g, &UnitCost);
    for choice in [
        PathChoice {
            side: Side::F,
            kind: PathKind::Heavy,
        },
        PathChoice {
            side: Side::G,
            kind: PathKind::Heavy,
        },
    ] {
        let mut exec = Executor::new(f, g, &UnitCost);
        let got = exec.run(&choice);
        assert_eq!(got, want, "{name}: {choice}");
    }
    let mut exec = Executor::new(f, g, &UnitCost);
    let got = exec.run(&rted_core::strategy::DemaineHeavy);
    assert_eq!(got, want, "{name}: Demaine");
}

fn star(n: usize, label: &str) -> Tree<String> {
    BuildNode::node(
        label.to_string(),
        (0..n - 1)
            .map(|i| BuildNode::leaf(format!("c{}", i % 3)))
            .collect(),
    )
    .build()
}

fn chain(n: usize) -> Tree<String> {
    let mut node = BuildNode::leaf("x".to_string());
    for i in 1..n {
        node = BuildNode::node(format!("n{}", i % 4), vec![node]);
    }
    node.build()
}

fn comb(n: usize, left: bool) -> Tree<String> {
    let mut node = BuildNode::leaf("l".to_string());
    for i in 1..n / 2 {
        let leaf = BuildNode::leaf(format!("s{}", i % 2));
        node = if left {
            BuildNode::node("i".to_string(), vec![node, leaf])
        } else {
            BuildNode::node("i".to_string(), vec![leaf, node])
        };
    }
    node.build()
}

#[test]
fn star_vs_star() {
    // Path of length 1 below the root: one period with many siblings.
    check_heavy(&star(40, "r"), &star(33, "r"), "star×star");
    check_heavy(&star(40, "r"), &star(40, "q"), "star×star same size");
}

#[test]
fn chain_vs_chain() {
    // Max periods, no siblings at all; B-side |A(G)| = |G| (minimal).
    check_heavy(&chain(60), &chain(45), "chain×chain");
}

#[test]
fn chain_vs_star() {
    // A-side all-trivial periods against a B-side with one giant family.
    check_heavy(&chain(50), &star(50, "r"), "chain×star");
    check_heavy(&star(50, "r"), &chain(50), "star×chain");
}

#[test]
fn left_comb_only_left_siblings() {
    // Heavy path = spine; in the left comb every period has exactly one
    // LEFT sibling and none on the right (stage R empty).
    check_heavy(&comb(60, false), &comb(50, false), "rcomb×rcomb");
}

#[test]
fn right_comb_only_right_siblings() {
    check_heavy(&comb(60, true), &comb(50, true), "lcomb×lcomb");
    check_heavy(&comb(60, true), &comb(60, false), "lcomb×rcomb");
}

#[test]
fn wide_shallow_periods() {
    // Path node with many siblings on both sides of the heavy child.
    let mk = |k: usize| {
        let mut children: Vec<BuildNode<String>> = (0..k)
            .map(|i| BuildNode::leaf(format!("a{}", i % 2)))
            .collect();
        children.insert(
            k / 2,
            BuildNode::node(
                "h".into(),
                vec![
                    BuildNode::leaf("u".into()),
                    BuildNode::leaf("v".into()),
                    BuildNode::leaf("w".into()),
                ],
            ),
        );
        BuildNode::node("root".into(), children).build()
    };
    check_heavy(&mk(12), &mk(9), "wide periods");
}

#[test]
fn heavy_child_not_first_or_last() {
    let f = parse_bracket("{r{a}{h{x{p}{q}}{y}}{b}{c}}").unwrap();
    let g = parse_bracket("{r{a}{b}{h{x}{y{p}{q}}}{c}}").unwrap();
    check_heavy(&f, &g, "middle heavy child");
}

#[test]
fn nested_heavy_paths_switch_sides() {
    // Alternating zig-zag: heavy paths change direction at every level.
    let f = parse_bracket("{a{b{c{d{e}{f}}{g}}{h}}{i}}").unwrap();
    let g = parse_bracket("{a{i}{b{h}{c{g}{d{f}{e}}}}}").unwrap();
    check_heavy(&f, &g, "nested alternating");
}

#[test]
fn singleton_sides() {
    let one = parse_bracket("{z}").unwrap();
    check_heavy(&one, &star(20, "r"), "1×star");
    check_heavy(&star(20, "r"), &one, "star×1");
    check_heavy(&one, &one, "1×1");
}

#[test]
fn duplicate_labels_everywhere() {
    // All-equal labels force the DP to discriminate purely structurally.
    let f = star(25, "x").map_labels(|_| "x".to_string());
    let g = chain(25).map_labels(|_| "x".to_string());
    check_heavy(&f, &g, "all-equal labels");
    // Distance = |25 - 25| structural moves only; sanity bound.
    let d = zs_distance(&f, &g, &UnitCost);
    assert!(d > 0.0 && d < 50.0);
}

#[test]
fn medium_random_cross_validation() {
    // Deterministic LCG-driven random trees, moderately sized so the heavy
    // machinery runs hundreds of periods.
    let mut seed = 0xdead_beefu64;
    let mut rnd = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as u32
    };
    for trial in 0..8 {
        let n1 = 40 + (rnd() % 60) as usize;
        let n2 = 40 + (rnd() % 60) as usize;
        let mk = |n: usize, rnd: &mut dyn FnMut() -> u32| {
            let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
            for i in 1..n {
                let p = rnd() % i as u32;
                children[p as usize].push(i as u32);
            }
            let mut post_of = vec![u32::MAX; n];
            let mut order = Vec::new();
            let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
            while let Some(&mut (v, ref mut i)) = stack.last_mut() {
                if *i < children[v as usize].len() {
                    let c = children[v as usize][*i];
                    *i += 1;
                    stack.push((c, 0));
                } else {
                    post_of[v as usize] = order.len() as u32;
                    order.push(v);
                    stack.pop();
                }
            }
            let labels: Vec<String> = (0..n).map(|_| format!("{}", rnd() % 3)).collect();
            let pc: Vec<Vec<u32>> = order
                .iter()
                .map(|&v| {
                    children[v as usize]
                        .iter()
                        .map(|&c| post_of[c as usize])
                        .collect()
                })
                .collect();
            Tree::from_postorder(labels, pc)
        };
        let f = mk(n1, &mut rnd);
        let g = mk(n2, &mut rnd);
        check_heavy(&f, &g, &format!("random trial {trial}"));
    }
}
