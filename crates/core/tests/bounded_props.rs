//! Property tests for the bounded kernel: on both sides of the threshold
//! `ted_at_most` must agree with exact RTED — `Exact(d)` with `d` equal to
//! the true distance whenever `d ≤ τ`, and `Exceeds(b)` with a lower bound
//! `b ≤ d` whenever `d > τ` — under the unit model and an asymmetric
//! per-label model, in both operand orders, through one shared workspace
//! (so the warm-buffer path is what gets exercised).

use proptest::prelude::*;
use rted_core::{
    ted_at_most_run, Algorithm, BoundedResult, CostModel, PerLabelCost, UnitCost, Workspace,
};
use rted_tree::Tree;

/// Builds a tree from random-attachment choices: node `i` (insertion
/// order, `i ≥ 1`) becomes the next child of node `choices[i-1] % i`.
fn tree_from_choices(labels: &[u8], choices: &[u32]) -> Tree<u8> {
    let n = labels.len();
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 1..n {
        let p = choices[i - 1] % i as u32;
        children[p as usize].push(i as u32);
    }
    let mut post_of = vec![u32::MAX; n];
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        if *i < children[v as usize].len() {
            let c = children[v as usize][*i];
            *i += 1;
            stack.push((c, 0));
        } else {
            post_of[v as usize] = order.len() as u32;
            order.push(v);
            stack.pop();
        }
    }
    let post_labels: Vec<u8> = order.iter().map(|&v| labels[v as usize]).collect();
    let post_children: Vec<Vec<u32>> = order
        .iter()
        .map(|&v| {
            children[v as usize]
                .iter()
                .map(|&c| post_of[c as usize])
                .collect()
        })
        .collect();
    Tree::from_postorder(post_labels, post_children)
}

fn arb_tree(max: usize) -> impl Strategy<Value = Tree<u8>> {
    (1..=max).prop_flat_map(|n| {
        (
            proptest::collection::vec(any::<u32>(), n.max(2) - 1),
            proptest::collection::vec(0u8..3, n),
        )
            .prop_map(move |(choices, labels)| tree_from_choices(&labels, &choices))
    })
}

/// Budgets straddling the true distance `d`, plus absolute edge cases.
fn budgets(d: f64) -> [f64; 8] {
    [
        0.0,
        d * 0.25,
        (d - 1.0).max(0.0),
        (d - 0.5).max(0.0),
        d,
        d + 0.5,
        d * 2.0 + 1.0,
        f64::INFINITY,
    ]
}

fn check_pair<C: CostModel<u8>>(f: &Tree<u8>, g: &Tree<u8>, cm: &C, ws: &mut Workspace) {
    let d = Algorithm::Rted.run(f, g, cm).distance;
    for tau in budgets(d) {
        let run = ted_at_most_run(f, g, cm, tau, ws);
        match run.result {
            BoundedResult::Exact(got) => {
                assert!(d <= tau, "Exact below budget tau={tau} but d={d}");
                assert_eq!(got, d, "exact value must match RTED at tau={tau}");
                assert!(!run.early_exit, "Exact results cannot be early exits");
            }
            BoundedResult::Exceeds(lb) => {
                assert!(d > tau, "Exceeds at tau={tau} but d={d}");
                assert!(lb <= d, "bound {lb} above true distance {d} at tau={tau}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn bounded_agrees_with_rted_on_both_threshold_sides(
        f in arb_tree(14),
        g in arb_tree(14),
    ) {
        let mut ws = Workspace::new();
        let asym = PerLabelCost::new(1.5, 2.0, 0.75);
        // Both cost models, both operand orders, one shared workspace.
        for (a, b) in [(&f, &g), (&g, &f)] {
            check_pair(a, b, &UnitCost, &mut ws);
            check_pair(a, b, &asym, &mut ws);
        }
    }

    #[test]
    fn abandoned_runs_never_outwork_the_full_kernel(
        f in arb_tree(14),
        g in arb_tree(14),
    ) {
        let mut ws = Workspace::new();
        let full = ted_at_most_run(&f, &g, &UnitCost, f64::INFINITY, &mut ws);
        for tau in [0.0, 1.0, 3.0] {
            let run = ted_at_most_run(&f, &g, &UnitCost, tau, &mut ws);
            prop_assert!(
                run.subproblems <= full.subproblems,
                "bounded run did more work ({}) than the exact kernel ({})",
                run.subproblems,
                full.subproblems
            );
        }
    }
}
