//! Property tests for [`Workspace`] reuse: one workspace threaded through
//! an arbitrary sequence of tree pairs must produce distances and
//! subproblem counts identical to a fresh self-contained run per pair —
//! for every algorithm, in both operand orders, and under an asymmetric
//! cost model (where swapping operands genuinely changes the answer).

use proptest::prelude::*;
use rted_core::{Algorithm, PerLabelCost, UnitCost, Workspace};
use rted_tree::Tree;

/// Builds a tree from random-attachment choices: node `i` (insertion
/// order, `i ≥ 1`) becomes the next child of node `choices[i-1] % i`.
fn tree_from_choices(labels: &[u8], choices: &[u32]) -> Tree<u8> {
    let n = labels.len();
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 1..n {
        let p = choices[i - 1] % i as u32;
        children[p as usize].push(i as u32);
    }
    let mut post_of = vec![u32::MAX; n];
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        if *i < children[v as usize].len() {
            let c = children[v as usize][*i];
            *i += 1;
            stack.push((c, 0));
        } else {
            post_of[v as usize] = order.len() as u32;
            order.push(v);
            stack.pop();
        }
    }
    let post_labels: Vec<u8> = order.iter().map(|&v| labels[v as usize]).collect();
    let post_children: Vec<Vec<u32>> = order
        .iter()
        .map(|&v| {
            children[v as usize]
                .iter()
                .map(|&c| post_of[c as usize])
                .collect()
        })
        .collect();
    Tree::from_postorder(post_labels, post_children)
}

fn arb_tree(max: usize) -> impl Strategy<Value = Tree<u8>> {
    (1..=max).prop_flat_map(|n| {
        (
            proptest::collection::vec(any::<u32>(), n.max(2) - 1),
            proptest::collection::vec(0u8..3, n),
        )
            .prop_map(move |(choices, labels)| tree_from_choices(&labels, &choices))
    })
}

/// A random sequence of pairs with wildly varying sizes, so the reused
/// buffers shrink and grow between pairs.
fn arb_pair_sequence() -> impl Strategy<Value = Vec<(Tree<u8>, Tree<u8>)>> {
    proptest::collection::vec((arb_tree(14), arb_tree(14)), 2..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reused_workspace_matches_fresh_per_pair(pairs in arb_pair_sequence()) {
        // An asymmetric model: delete ≠ insert, so d(f, g) ≠ d(g, f) in
        // general and any orientation mix-up in the reused buffers would
        // surface as a mismatch.
        let asym = PerLabelCost::new(1.5, 2.0, 0.75);
        let mut ws = Workspace::new();
        for (f, g) in &pairs {
            for alg in Algorithm::ALL {
                let fresh = alg.run(f, g, &UnitCost);
                let reused = alg.run_in(f, g, &UnitCost, &mut ws);
                prop_assert_eq!(reused.distance, fresh.distance, "{} unit", alg);
                prop_assert_eq!(reused.subproblems, fresh.subproblems, "{} unit", alg);

                // Swapped operand order through the same workspace.
                let fresh_swapped = alg.run(g, f, &UnitCost);
                let reused_swapped = alg.run_in(g, f, &UnitCost, &mut ws);
                prop_assert_eq!(reused_swapped.distance, fresh_swapped.distance, "{} unit swapped", alg);

                let fresh_asym = alg.run(f, g, &asym);
                let reused_asym = alg.run_in(f, g, &asym, &mut ws);
                prop_assert_eq!(reused_asym.distance, fresh_asym.distance, "{} asym", alg);
                let fresh_asym_swapped = alg.run(g, f, &asym);
                let reused_asym_swapped = alg.run_in(g, f, &asym, &mut ws);
                prop_assert_eq!(
                    reused_asym_swapped.distance,
                    fresh_asym_swapped.distance,
                    "{} asym swapped", alg
                );
            }
        }
    }

    #[test]
    fn reused_executor_workspace_matches_fresh(f in arb_tree(12), g in arb_tree(12)) {
        use rted_core::{compute_strategy_in, Executor, OptimalChooser};
        let mut ws = Workspace::new();
        // Two back-to-back executions on one workspace, interleaved with a
        // strategy computation that also borrows it.
        for _ in 0..2 {
            let strategy = compute_strategy_in(&f, &g, &OptimalChooser, &mut ws);
            let fresh = {
                let mut exec = Executor::new(&f, &g, &UnitCost);
                exec.run(&strategy)
            };
            let reused = {
                let mut exec = Executor::with_workspace(&f, &g, &UnitCost, &mut ws);
                exec.run(&strategy)
            };
            prop_assert_eq!(reused, fresh);
            ws.recycle(strategy);
        }
    }
}
