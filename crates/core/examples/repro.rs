//! Randomized cross-validation scanner: all six constant GTED strategies
//! and RTED against the recursive reference on tens of thousands of random
//! tree pairs. Exits on the first mismatch with a reproducer.
//!
//! ```text
//! cargo run --release -p rted-core --example repro -- [trials] [max_n]
//! ```

use rted_core::reference::reference_ted;
use rted_core::strategy::PathChoice;
use rted_core::{Executor, UnitCost};
use rted_tree::Tree;

fn tree_from_choices(n: usize, rnd: &mut impl FnMut() -> u32) -> Tree<u8> {
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 1..n {
        let p = rnd() % i as u32;
        children[p as usize].push(i as u32);
    }
    let mut post_of = vec![u32::MAX; n];
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        if *i < children[v as usize].len() {
            let c = children[v as usize][*i];
            *i += 1;
            stack.push((c, 0));
        } else {
            post_of[v as usize] = order.len() as u32;
            order.push(v);
            stack.pop();
        }
    }
    let labels: Vec<u8> = order.iter().map(|&v| (v % 3) as u8).collect();
    let post_children: Vec<Vec<u32>> = order
        .iter()
        .map(|&v| {
            children[v as usize]
                .iter()
                .map(|&c| post_of[c as usize])
                .collect()
        })
        .collect();
    Tree::from_postorder(labels, post_children)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trials: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let max_n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(9);

    let mut seed: u64 = 0x1234_5678;
    let mut rnd = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as u32
    };
    for trial in 0..trials {
        let n1 = 1 + (rnd() as usize) % max_n;
        let n2 = 1 + (rnd() as usize) % max_n;
        let f = tree_from_choices(n1, &mut rnd);
        let g = tree_from_choices(n2, &mut rnd);
        let want = reference_ted(&f, &g, &UnitCost);
        for choice in PathChoice::ALL {
            let mut exec = Executor::new(&f, &g, &UnitCost);
            let got = exec.run(&choice);
            if got != want {
                println!("MISMATCH trial {trial} choice {choice}: got {got} want {want}");
                println!(
                    "f: {}",
                    rted_tree::to_bracket(&f.map_labels(|l| l.to_string()))
                );
                println!(
                    "g: {}",
                    rted_tree::to_bracket(&g.map_labels(|l| l.to_string()))
                );
                std::process::exit(1);
            }
        }
        let strat = rted_core::optimal_strategy(&f, &g);
        let mut exec = Executor::new(&f, &g, &UnitCost);
        let got = exec.run(&strat);
        if got != want {
            println!("RTED MISMATCH trial {trial}: got {got} want {want}");
            println!(
                "f: {}",
                rted_tree::to_bracket(&f.map_labels(|l| l.to_string()))
            );
            println!(
                "g: {}",
                rted_tree::to_bracket(&g.map_labels(|l| l.to_string()))
            );
            std::process::exit(1);
        }
    }
    println!("ok: {trials} random pairs, all strategies match the reference");
}
