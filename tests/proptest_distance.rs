//! Property-based tests: arbitrary small trees, full oracle chain.
//!
//! Trees are generated from arbitrary parent vectors (every postorder
//! parent vector with `parents[i] > i` is a valid ordered tree), which
//! covers shapes no hand-written generator produces.

use proptest::prelude::*;
use rted::core::reference::reference_ted;
use rted::core::strategy::PathChoice;
use rted::core::{Algorithm, Executor, PerLabelCost, UnitCost};
use rted::tree::Tree;

/// Builds a tree from random-attachment choices: node `i` (insertion
/// order, `i ≥ 1`) becomes the next child of node `choices[i-1] % i`.
/// Every ordered tree shape is reachable, and the construction is valid by
/// design (the adjacency is converted to postorder ids at the end).
fn tree_from_choices(labels: &[u8], choices: &[u32]) -> Tree<u8> {
    let n = labels.len();
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 1..n {
        let p = choices[i - 1] % i as u32;
        children[p as usize].push(i as u32);
    }
    // Convert insertion ids to postorder ids.
    let mut post_of = vec![u32::MAX; n];
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        if *i < children[v as usize].len() {
            let c = children[v as usize][*i];
            *i += 1;
            stack.push((c, 0));
        } else {
            post_of[v as usize] = order.len() as u32;
            order.push(v);
            stack.pop();
        }
    }
    let post_labels: Vec<u8> = order.iter().map(|&v| labels[v as usize]).collect();
    let post_children: Vec<Vec<u32>> = order
        .iter()
        .map(|&v| {
            children[v as usize]
                .iter()
                .map(|&c| post_of[c as usize])
                .collect()
        })
        .collect();
    Tree::from_postorder(post_labels, post_children)
}

/// Strategy: an arbitrary ordered tree with 1..=max nodes and labels from a
/// 3-symbol alphabet.
fn arb_tree(max: usize) -> impl Strategy<Value = Tree<u8>> {
    (1..=max).prop_flat_map(|n| {
        (
            proptest::collection::vec(any::<u32>(), n.max(2) - 1),
            proptest::collection::vec(0u8..3, n),
        )
            .prop_map(move |(choices, labels)| tree_from_choices(&labels, &choices))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_algorithm_matches_reference(f in arb_tree(9), g in arb_tree(9)) {
        let want = reference_ted(&f, &g, &UnitCost);
        for alg in Algorithm::ALL {
            let got = alg.run(&f, &g, &UnitCost).distance;
            prop_assert_eq!(got, want, "{}", alg);
        }
    }

    #[test]
    fn every_gted_strategy_matches_reference(f in arb_tree(8), g in arb_tree(8)) {
        let want = reference_ted(&f, &g, &UnitCost);
        for choice in PathChoice::ALL {
            let mut exec = Executor::new(&f, &g, &UnitCost);
            let got = exec.run(&choice);
            prop_assert_eq!(got, want, "{}", choice);
        }
    }

    #[test]
    fn weighted_model_matches_reference(f in arb_tree(7), g in arb_tree(7)) {
        let cm = PerLabelCost::new(2.0, 1.0, 0.5);
        let want = reference_ted(&f, &g, &cm);
        let got = Algorithm::Rted.run(&f, &g, &cm).distance;
        prop_assert!((got - want).abs() < 1e-9);
    }

    #[test]
    fn rted_within_bounds_and_symmetric(f in arb_tree(16), g in arb_tree(16)) {
        let d = Algorithm::Rted.run(&f, &g, &UnitCost).distance;
        let rev = Algorithm::Rted.run(&g, &f, &UnitCost).distance;
        prop_assert_eq!(d, rev);
        prop_assert!(d >= (f.len() as f64 - g.len() as f64).abs());
        prop_assert!(d <= (f.len() + g.len()) as f64);
    }

    #[test]
    fn measured_count_equals_cost_formula(f in arb_tree(14), g in arb_tree(14)) {
        for alg in Algorithm::ALL {
            let run = alg.run(&f, &g, &UnitCost);
            prop_assert_eq!(run.subproblems, alg.predicted_subproblems(&f, &g), "{}", alg);
        }
    }

    #[test]
    fn optimal_cost_is_minimal(f in arb_tree(12), g in arb_tree(12)) {
        use rted::core::strategy::{compute_strategy, FixedChooser};
        let opt = rted::core::optimal_strategy(&f, &g).cost;
        for choice in PathChoice::ALL {
            let c = compute_strategy(&f, &g, &FixedChooser(choice)).cost;
            prop_assert!(opt <= c, "{} beats optimal", choice);
        }
    }
}
