//! Metric and invariance properties of the unit-cost tree edit distance,
//! checked through RTED on randomized inputs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rted::core::{ted, Algorithm, UnitCost};
use rted::datasets::shapes::{perturb_labels, random_tree, relabel_random, DEFAULT_ALPHABET};
use rted::datasets::Shape;
use rted::tree::Tree;

fn rnd(seed: u64, n: usize) -> Tree<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = random_tree(n, 15, 6, &mut rng);
    relabel_random(&t, 5, seed)
}

#[test]
fn identity() {
    for seed in 0..10 {
        let t = rnd(seed, 1 + (seed as usize * 17) % 60);
        assert_eq!(ted(&t, &t), 0.0, "seed {seed}");
    }
}

#[test]
fn symmetry() {
    for seed in 0..20 {
        let f = rnd(seed, 1 + (seed as usize * 11) % 45);
        let g = rnd(seed + 100, 1 + (seed as usize * 19) % 45);
        assert_eq!(ted(&f, &g), ted(&g, &f), "seed {seed}");
    }
}

#[test]
fn triangle_inequality() {
    for seed in 0..12 {
        let a = rnd(seed, 20 + (seed as usize * 3) % 15);
        let b = rnd(seed + 50, 18 + (seed as usize * 5) % 15);
        let c = rnd(seed + 99, 16 + (seed as usize * 7) % 15);
        let ab = ted(&a, &b);
        let bc = ted(&b, &c);
        let ac = ted(&a, &c);
        assert!(ac <= ab + bc + 1e-9, "seed {seed}: {ac} > {ab} + {bc}");
    }
}

#[test]
fn size_bounds() {
    for seed in 0..20 {
        let f = rnd(seed, 1 + (seed as usize * 13) % 50);
        let g = rnd(seed + 31, 1 + (seed as usize * 7) % 50);
        let d = ted(&f, &g);
        let lo = (f.len() as f64 - g.len() as f64).abs();
        let hi = (f.len() + g.len()) as f64;
        assert!(d >= lo && d <= hi, "seed {seed}: {d} outside [{lo}, {hi}]");
    }
}

#[test]
fn mirror_invariance() {
    // TED(F, G) = TED(mirror F, mirror G): reversing sibling order on both
    // sides preserves every mapping.
    for seed in 0..15 {
        let f = rnd(seed, 10 + (seed as usize * 11) % 40);
        let g = rnd(seed + 7, 10 + (seed as usize * 5) % 40);
        assert_eq!(
            ted(&f, &g),
            ted(&f.mirrored(), &g.mirrored()),
            "seed {seed}"
        );
    }
}

#[test]
fn label_permutation_invariance() {
    // Applying one injective relabeling to both trees preserves distances.
    for seed in 0..10 {
        let f = rnd(seed, 25);
        let g = rnd(seed + 3, 25);
        let perm = |l: &u32| (l * 7 + 13) % 101; // injective on 0..=100
        let fp = f.map_labels(perm);
        let gp = g.map_labels(perm);
        assert_eq!(ted(&f, &g), ted(&fp, &gp), "seed {seed}");
    }
}

#[test]
fn k_perturbations_bound_distance() {
    // k label changes yield distance ≤ k.
    for seed in 0..15 {
        let f = rnd(seed, 40);
        let k = (seed as usize % 6) + 1;
        let g = perturb_labels(&f, k, DEFAULT_ALPHABET, seed + 77);
        let d = ted(&f, &g);
        assert!(d <= k as f64, "seed {seed}: {d} > {k}");
    }
}

#[test]
fn subtree_deletion_distance() {
    // Removing a whole subtree costs exactly its size under unit costs
    // when everything else is untouched.
    let f = rted::parse_bracket("{a{b{c}{d}}{e{f}{g{h}}}}").unwrap();
    let g = rted::parse_bracket("{a{b{c}{d}}}").unwrap();
    assert_eq!(ted(&f, &g), 4.0);
}

#[test]
fn distance_zero_iff_equal_structure_and_labels() {
    for seed in 0..10 {
        let f = rnd(seed, 30);
        let g = perturb_labels(&f, 1, 1000 + seed as u32, seed + 1);
        // The perturbation draws from a disjoint alphabet, so it must
        // change something.
        let structurally_equal = f.nodes().all(|v| f.label(v) == g.label(v));
        let d = ted(&f, &g);
        assert_eq!(d == 0.0, structurally_equal, "seed {seed}");
    }
}

#[test]
fn caterpillar_vs_caterpillar_exact() {
    // LB and RB of the same odd size n share the leaf multiset; distance
    // is driven by structure. Sanity: all algorithms agree and the value
    // is stable across sizes (regression guard on adversarial inputs).
    for n in [11usize, 21, 31] {
        let f = Shape::LeftBranch.generate(n, 900);
        let g = Shape::RightBranch.generate(n, 900);
        let d0 = Algorithm::ZhangL.run(&f, &g, &UnitCost).distance;
        for alg in Algorithm::ALL {
            assert_eq!(alg.run(&f, &g, &UnitCost).distance, d0, "{alg} n={n}");
        }
    }
}
