//! The counting backbone of the paper, end to end: instrumented execution
//! counts equal the Fig.-5 cost formula, Algorithm 2 equals the §6.1
//! baseline, and RTED's count is minimal among all LRH competitors.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rted::core::baseline::baseline_optimal_cost;
use rted::core::strategy::{compute_strategy, FixedChooser, PathChoice};
use rted::core::{optimal_strategy, Algorithm, Executor, UnitCost};
use rted::datasets::shapes::{random_tree, relabel_random};
use rted::datasets::Shape;
use rted::tree::Tree;

fn rnd(seed: u64, n: usize) -> Tree<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = random_tree(n, 15, 6, &mut rng);
    relabel_random(&t, 4, seed)
}

#[test]
fn measured_equals_predicted_for_all_fixed_strategies() {
    for seed in 0..20 {
        let f = rnd(seed, 1 + (seed as usize * 9) % 45);
        let g = rnd(seed + 5, 1 + (seed as usize * 17) % 45);
        for choice in PathChoice::ALL {
            let predicted = compute_strategy(&f, &g, &FixedChooser(choice)).cost;
            let mut exec = Executor::new(&f, &g, &UnitCost);
            exec.run(&choice);
            assert_eq!(exec.stats.subproblems, predicted, "{choice} seed {seed}");
        }
    }
}

#[test]
fn measured_equals_predicted_for_all_algorithms() {
    for seed in 0..15 {
        let f = rnd(seed, 40);
        let g = rnd(seed + 9, 35);
        for alg in Algorithm::ALL {
            let run = alg.run(&f, &g, &UnitCost);
            let predicted = alg.predicted_subproblems(&f, &g);
            assert_eq!(run.subproblems, predicted, "{alg} seed {seed}");
        }
    }
}

#[test]
fn algorithm2_equals_baseline_on_random_trees() {
    for seed in 0..25 {
        let f = rnd(seed, 1 + (seed as usize * 5) % 30);
        let g = rnd(seed + 40, 1 + (seed as usize * 3) % 30);
        let fast = optimal_strategy(&f, &g).cost;
        let base = baseline_optimal_cost(&f, &g).cost;
        assert_eq!(fast, base, "seed {seed}");
    }
}

#[test]
fn algorithm2_equals_baseline_on_shapes() {
    for sf in Shape::ALL {
        for sg in Shape::ALL {
            let f = sf.generate(25, 1);
            let g = sg.generate(20, 2);
            assert_eq!(
                optimal_strategy(&f, &g).cost,
                baseline_optimal_cost(&f, &g).cost,
                "{sf} × {sg}"
            );
        }
    }
}

#[test]
fn rted_count_never_exceeds_any_lrh_competitor() {
    for seed in 0..20 {
        let f = rnd(seed, 50);
        let g = rnd(seed + 11, 45);
        let rted = Algorithm::Rted.predicted_subproblems(&f, &g);
        for alg in Algorithm::ALL {
            let c = alg.predicted_subproblems(&f, &g);
            assert!(rted <= c, "{alg} {c} < RTED {rted}, seed {seed}");
        }
        // ...and below every constant LRH strategy, including G-side ones.
        for choice in PathChoice::ALL {
            let c = compute_strategy(&f, &g, &FixedChooser(choice)).cost;
            assert!(rted <= c, "{choice} {c} < RTED {rted}, seed {seed}");
        }
    }
}

#[test]
fn strategy_cost_is_symmetric_under_swap() {
    // cost(F, G) under the optimal strategy equals cost(G, F): the six
    // options are mirror images of each other.
    for seed in 0..15 {
        let f = rnd(seed, 35);
        let g = rnd(seed + 21, 30);
        assert_eq!(
            optimal_strategy(&f, &g).cost,
            optimal_strategy(&g, &f).cost,
            "seed {seed}"
        );
    }
}

#[test]
fn identical_tree_pairs_figure8_invariants() {
    // On identical pairs of the named shapes the paper's winners hold.
    let n = 150;
    let check = |shape: Shape, winners: &[Algorithm]| {
        let t = shape.generate(n, 3);
        let rted = Algorithm::Rted.predicted_subproblems(&t, &t);
        let best_fixed = [
            Algorithm::ZhangL,
            Algorithm::ZhangR,
            Algorithm::KleinH,
            Algorithm::DemaineH,
        ]
        .iter()
        .map(|a| a.predicted_subproblems(&t, &t))
        .min()
        .unwrap();
        for w in winners {
            let c = w.predicted_subproblems(&t, &t);
            assert_eq!(
                c, best_fixed,
                "{shape}: {w} should be the best fixed strategy"
            );
        }
        assert!(rted <= best_fixed, "{shape}");
    };
    check(Shape::LeftBranch, &[Algorithm::ZhangL]);
    check(Shape::RightBranch, &[Algorithm::ZhangR]);
    check(Shape::ZigZag, &[Algorithm::DemaineH]);
}

#[test]
fn subproblem_scaling_exponents() {
    // Asymptotic sanity on identical pairs: Zhang-L on LB is ~quadratic,
    // Zhang-R on LB ~quartic, Demaine-H on LB ~cubic.
    let lb_s = Shape::LeftBranch.generate(101, 0);
    let lb_l = Shape::LeftBranch.generate(201, 0);
    let ratio = |alg: Algorithm| {
        Algorithm::predicted_subproblems(alg, &lb_l, &lb_l) as f64
            / Algorithm::predicted_subproblems(alg, &lb_s, &lb_s) as f64
    };
    let zl = ratio(Algorithm::ZhangL);
    let zr = ratio(Algorithm::ZhangR);
    let dh = ratio(Algorithm::DemaineH);
    assert!(
        zl > 3.0 && zl < 5.0,
        "Zhang-L on LB should be ~n²: ratio {zl}"
    );
    assert!(
        zr > 12.0 && zr < 20.0,
        "Zhang-R on LB should be ~n⁴: ratio {zr}"
    );
    assert!(
        dh > 6.0 && dh < 10.0,
        "Demaine-H on LB should be ~n³: ratio {dh}"
    );
}
