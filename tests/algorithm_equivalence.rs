//! Cross-algorithm equivalence on randomized workloads.
//!
//! The oracle chain: the recursive reference validates Zhang–Shasha on
//! small trees (in rted-core's unit tests); here Zhang–Shasha validates
//! every GTED strategy, Klein, Demaine and RTED on hundreds of larger
//! random and adversarial inputs, under unit and non-uniform cost models.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rted::core::cost::FnCost;
use rted::core::strategy::{PathChoice, Side};
use rted::core::{Algorithm, Executor, PerLabelCost, UnitCost};
use rted::datasets::shapes::random_tree;
use rted::datasets::Shape;
use rted::tree::{PathKind, Tree};

fn random_pair(seed: u64, max_n: usize) -> (Tree<u32>, Tree<u32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n1 = 1 + (seed as usize * 7) % max_n;
    let n2 = 1 + (seed as usize * 13) % max_n;
    let f = random_tree(n1.max(1), 15, 6, &mut rng);
    let g = random_tree(n2.max(1), 15, 6, &mut rng);
    (
        rted::datasets::shapes::relabel_random(&f, 4, seed),
        rted::datasets::shapes::relabel_random(&g, 4, seed + 1),
    )
}

#[test]
fn all_algorithms_agree_on_random_trees() {
    for seed in 0..60 {
        let (f, g) = random_pair(seed, 60);
        let want = Algorithm::ZhangL.run(&f, &g, &UnitCost).distance;
        for alg in Algorithm::ALL {
            let got = alg.run(&f, &g, &UnitCost).distance;
            assert_eq!(
                got,
                want,
                "{alg} seed {seed} ({} vs {} nodes)",
                f.len(),
                g.len()
            );
        }
    }
}

#[test]
fn all_gted_strategies_agree_on_random_trees() {
    for seed in 0..40 {
        let (f, g) = random_pair(seed, 50);
        let want = Algorithm::ZhangL.run(&f, &g, &UnitCost).distance;
        for choice in PathChoice::ALL {
            let mut exec = Executor::new(&f, &g, &UnitCost);
            let got = exec.run(&choice);
            assert_eq!(got, want, "strategy {choice} seed {seed}");
        }
    }
}

#[test]
fn agreement_on_adversarial_shape_pairs() {
    for (i, sf) in Shape::ALL.iter().enumerate() {
        for (j, sg) in Shape::ALL.iter().enumerate() {
            let f = sf.generate(70, i as u64);
            let g = sg.generate(55, 100 + j as u64);
            let want = Algorithm::ZhangL.run(&f, &g, &UnitCost).distance;
            for alg in Algorithm::ALL {
                let got = alg.run(&f, &g, &UnitCost).distance;
                assert_eq!(got, want, "{alg} on {sf}×{sg}");
            }
        }
    }
}

#[test]
fn agreement_under_weighted_costs() {
    let cm = PerLabelCost::new(1.5, 2.5, 0.75);
    for seed in 0..25 {
        let (f, g) = random_pair(seed, 40);
        let want = Algorithm::ZhangL.run(&f, &g, &cm).distance;
        for alg in Algorithm::ALL {
            let got = alg.run(&f, &g, &cm).distance;
            assert!(
                (got - want).abs() < 1e-9,
                "{alg} seed {seed}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn agreement_under_label_dependent_costs() {
    // Costs depending on the label value exercise the per-node cost tables
    // and the swapped-orientation accessors (delete ≠ insert).
    let cm = FnCost {
        del: |l: &u32| 1.0 + (*l % 3) as f64,
        ins: |l: &u32| 2.0 + (*l % 2) as f64,
        ren: |a: &u32, b: &u32| {
            if a == b {
                0.0
            } else {
                1.0 + ((a + b) % 2) as f64
            }
        },
    };
    for seed in 0..25 {
        let (f, g) = random_pair(seed, 36);
        let want = Algorithm::ZhangL.run(&f, &g, &cm).distance;
        for alg in Algorithm::ALL {
            let got = alg.run(&f, &g, &cm).distance;
            assert!(
                (got - want).abs() < 1e-9,
                "{alg} seed {seed}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn gted_fills_consistent_subtree_matrix() {
    // Under any strategy, GTED's full subtree-distance matrix must be
    // internally consistent with per-pair recomputation.
    let f = Shape::Random.generate(35, 5);
    let g = Shape::Mixed.generate(30, 6);
    let strat = rted::core::optimal_strategy(&f, &g);
    let mut exec = Executor::new(&f, &g, &UnitCost);
    exec.run(&strat);
    for v in f.nodes().step_by(7) {
        for w in g.nodes().step_by(5) {
            let sf = f.subtree(v);
            let sg = g.subtree(w);
            let want = Algorithm::ZhangL.run(&sf, &sg, &UnitCost).distance;
            assert_eq!(exec.subtree_distance(v, w), want, "pair ({v},{w})");
        }
    }
}

#[test]
fn heavy_path_strategies_on_deep_narrow_trees() {
    // Deep chains stress ∆I's period machinery (single-child path nodes,
    // empty sibling stages) and the iterative GTED driver.
    let f = rted::datasets::realworld::treefam_like(120, 3);
    let g = rted::datasets::realworld::treefam_like(90, 4);
    let want = Algorithm::ZhangL.run(&f, &g, &UnitCost).distance;
    for alg in [Algorithm::KleinH, Algorithm::DemaineH, Algorithm::Rted] {
        assert_eq!(alg.run(&f, &g, &UnitCost).distance, want, "{alg}");
    }
    // G-side heavy (forced swap on every pair).
    let mut exec = Executor::new(&f, &g, &UnitCost);
    let got = exec.run(&PathChoice {
        side: Side::G,
        kind: PathKind::Heavy,
    });
    assert_eq!(got, want);
}

#[test]
fn single_node_edge_cases() {
    let one = Shape::LeftBranch.generate(1, 0);
    let big = Shape::Random.generate(30, 1);
    for alg in Algorithm::ALL {
        let d1 = alg.run(&one, &big, &UnitCost).distance;
        let d2 = alg.run(&big, &one, &UnitCost).distance;
        assert_eq!(d1, d2, "{alg}");
        // Delete everything but one matched/renamed node.
        assert!(d1 == (big.len() - 1) as f64 || d1 == big.len() as f64);
    }
}
